//! Synthetic WAN generator — the stand-in for the paper's proprietary
//! production networks (Table 3: N0, N1, N2, and the full WAN).
//!
//! The generated networks mirror the production structure the paper
//! describes: a backbone AS running IS-IS + an iBGP full mesh + SRv6-style
//! policies, surrounded by stub ASes (data centers / ISP peers) speaking
//! eBGP, millions of prefixes collapsing into few origination classes, and
//! a heavy-tailed (Zipf) flow distribution over prefixes — the property
//! that makes global and link-local flow equivalence effective (Fig. 12's
//! "6× more flows, +31.5% time" behavior).
//!
//! Absolute sizes are scaled down from production (1000 routers / 2×10⁹
//! flows) to laptop scale; the scaling factors are documented in
//! EXPERIMENTS.md.

use crate::fattree::FatTree;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use yu_mtbdd::Ratio;
use yu_net::{BgpConfig, Flow, Ipv4, Network, Prefix, RouterId, SrPath, SrPolicy, Topology};

/// Parameters of the synthetic WAN.
#[derive(Debug, Clone, Copy)]
pub struct WanParams {
    /// Backbone (core) routers — one AS, IS-IS + iBGP mesh.
    pub core_routers: usize,
    /// Stub routers (each its own AS, eBGP to the backbone).
    pub stub_routers: usize,
    /// Extra random chords in the backbone beyond the ring (the ring
    /// guarantees connectivity).
    pub extra_core_links: usize,
    /// Service prefixes, spread over the stubs.
    pub prefixes: usize,
    /// SR policies installed on backbone border routers.
    pub sr_policies: usize,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

/// The preset scaled-down stand-ins for Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WanPreset {
    /// Small production sub-network (paper: 100 routers / 200 links).
    N0,
    /// Medium sub-network (paper: 200 routers / 500 links).
    N1,
    /// Large sub-network (paper: 500 routers / 2500 links).
    N2,
    /// The full WAN (paper: 1000 routers / 4000 links).
    Wan,
}

impl WanPreset {
    /// The scaled parameters of this preset (×(1/7) of the paper's router
    /// counts, keeping the link-to-router ratios).
    pub fn params(self) -> WanParams {
        match self {
            WanPreset::N0 => WanParams {
                core_routers: 10,
                stub_routers: 5,
                extra_core_links: 8,
                prefixes: 40,
                sr_policies: 3,
                seed: 0xA0,
            },
            WanPreset::N1 => WanParams {
                core_routers: 20,
                stub_routers: 9,
                extra_core_links: 24,
                prefixes: 120,
                sr_policies: 6,
                seed: 0xA1,
            },
            WanPreset::N2 => WanParams {
                core_routers: 48,
                stub_routers: 24,
                extra_core_links: 110,
                prefixes: 300,
                sr_policies: 12,
                seed: 0xA2,
            },
            WanPreset::Wan => WanParams {
                core_routers: 96,
                stub_routers: 44,
                extra_core_links: 220,
                prefixes: 600,
                sr_policies: 24,
                seed: 0xAF,
            },
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WanPreset::N0 => "N0",
            WanPreset::N1 => "N1",
            WanPreset::N2 => "N2",
            WanPreset::Wan => "WAN",
        }
    }
}

/// A generated WAN with its workload anchors.
pub struct Wan {
    /// The configured network.
    pub net: Network,
    /// Backbone routers (AS 100).
    pub cores: Vec<RouterId>,
    /// Stub routers with the prefixes each originates.
    pub stubs: Vec<(RouterId, Vec<Prefix>)>,
    /// The generator parameters.
    pub params: WanParams,
}

const BACKBONE_AS: u32 = 100;

/// Generates a synthetic WAN.
pub fn wan(params: WanParams) -> Wan {
    assert!(
        params.core_routers >= 3,
        "need at least a 3-router backbone"
    );
    assert!(params.stub_routers >= 1);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut t = Topology::new();
    let core_cap = Ratio::int(400);
    let edge_cap = Ratio::int(400);

    let mut cores = Vec::with_capacity(params.core_routers);
    for i in 0..params.core_routers {
        let lo = Ipv4::new(10, 0, (i / 256) as u8, (i % 256) as u8);
        cores.push(t.add_router(format!("bb{i}"), lo, BACKBONE_AS));
    }
    // Backbone ring for guaranteed connectivity...
    for i in 0..params.core_routers {
        let j = (i + 1) % params.core_routers;
        t.add_link(cores[i], cores[j], 10, core_cap.clone());
    }
    // ...plus random chords (random IGP costs in {10, 20, 30}).
    for _ in 0..params.extra_core_links {
        let a = rng.random_range(0..params.core_routers);
        let mut b = rng.random_range(0..params.core_routers);
        if a == b {
            b = (b + 1) % params.core_routers;
        }
        let cost = 10 * rng.random_range(1..=3u64);
        t.add_link(cores[a], cores[b], cost, core_cap.clone());
    }
    // Stubs: each attaches to one or two backbone routers. For
    // dual-homed stubs the second border imports the stub's routes at a
    // lower local preference (primary/backup egress) — the standard WAN
    // policy that keeps hop-by-hop forwarding loop-free while the backup
    // takes over symbolically when the primary path is gone.
    let mut stub_ids = Vec::with_capacity(params.stub_routers);
    let mut backup_imports: Vec<(usize, RouterId)> = Vec::new();
    for i in 0..params.stub_routers {
        let lo = Ipv4::new(10, 1, (i / 256) as u8, (i % 256) as u8);
        let r = t.add_router(format!("stub{i}"), lo, 200 + i as u32);
        let a = rng.random_range(0..params.core_routers);
        t.add_link(r, cores[a], 10, edge_cap.clone());
        if rng.random_bool(0.6) {
            let mut b = rng.random_range(0..params.core_routers);
            if b == a {
                b = (b + 1) % params.core_routers;
            }
            t.add_link(r, cores[b], 10, edge_cap.clone());
            backup_imports.push((b, r));
        }
        stub_ids.push(r);
    }

    let mut net = Network::new(t);
    for &r in &cores {
        net.config_mut(r).isis_enabled = true;
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    for &r in &stub_ids {
        net.config_mut(r).bgp = Some(BgpConfig::default());
    }
    for (b, stub) in backup_imports {
        net.config_mut(cores[b])
            .bgp
            .as_mut()
            .unwrap()
            .peer_local_pref
            .push((stub, 90));
    }
    // Prefixes spread over stubs (Zipf-ish: earlier stubs get more).
    let mut stubs: Vec<(RouterId, Vec<Prefix>)> =
        stub_ids.iter().map(|&r| (r, Vec::new())).collect();
    for p in 0..params.prefixes {
        let s = zipf_index(&mut rng, stubs.len());
        let prefix = Prefix::new(
            Ipv4::new(
                60 + (p / 65536) as u8,
                (p / 256 % 256) as u8,
                (p % 256) as u8,
                0,
            ),
            24,
        );
        stubs[s].1.push(prefix);
    }
    for (r, prefixes) in &stubs {
        let cfg = net.config_mut(*r);
        cfg.connected.extend(prefixes.iter().copied());
        cfg.bgp.as_mut().unwrap().networks = prefixes.clone();
    }
    // SR policies on random backbone routers: steer DSCP-5 traffic for a
    // random egress loopback over two weighted segment paths. Retry the
    // random draws (bounded) until four distinct routers come up.
    let mut installed = 0;
    let mut attempts = 0;
    while installed < params.sr_policies && attempts < params.sr_policies * 20 {
        attempts += 1;
        if cores.len() < 4 {
            break;
        }
        let head = cores[rng.random_range(0..cores.len())];
        let egress = cores[rng.random_range(0..cores.len())];
        let mid1 = cores[rng.random_range(0..cores.len())];
        let mid2 = cores[rng.random_range(0..cores.len())];
        let picks = [head, egress, mid1, mid2];
        let distinct: std::collections::BTreeSet<_> = picks.iter().collect();
        if distinct.len() != picks.len() {
            continue;
        }
        installed += 1;
        let egress_lo = net.topo.router(egress).loopback;
        let mid1_lo = net.topo.router(mid1).loopback;
        let mid2_lo = net.topo.router(mid2).loopback;
        net.config_mut(head).sr_policies.push(SrPolicy {
            endpoint: egress_lo,
            match_dscp: Some(5),
            paths: vec![
                SrPath {
                    segments: vec![mid1_lo, egress_lo],
                    weight: 75,
                },
                SrPath {
                    segments: vec![mid2_lo, egress_lo],
                    weight: 25,
                },
            ],
        });
    }

    Wan {
        net,
        cores,
        stubs,
        params,
    }
}

impl Wan {
    /// Generates `count` flows: ingress at a random stub, destination
    /// drawn Zipf-style over the prefixes (heavy head, long tail), DSCP 5
    /// with 10% probability, volumes 0.01–0.8 Gbps in 1/100 steps (sized
    /// so thousands of flows load the backbone to a realistic fraction of
    /// capacity, with overloads appearing under failure shifts).
    pub fn flows(&self, count: usize, seed: u64) -> Vec<Flow> {
        let mut rng = StdRng::seed_from_u64(seed);
        let all_prefixes: Vec<Prefix> = self
            .stubs
            .iter()
            .flat_map(|(_, ps)| ps.iter().copied())
            .collect();
        let mut flows = Vec::with_capacity(count);
        for i in 0..count {
            let ingress = self.stubs[rng.random_range(0..self.stubs.len())].0;
            let p = all_prefixes[zipf_index(&mut rng, all_prefixes.len())];
            let host = rng.random_range(1..=254u32);
            let dst = Ipv4(p.addr().0 | host);
            let dscp = if rng.random_bool(0.1) { 5 } else { 0 };
            let volume = Ratio::new(rng.random_range(1..=80), 100);
            flows.push(Flow::new(
                ingress,
                Ipv4::new(
                    11,
                    (i / 65536) as u8,
                    (i / 256 % 256) as u8,
                    (i % 256) as u8,
                ),
                dst,
                dscp,
                volume,
            ));
        }
        flows
    }
}

/// Approximate Zipf(1) index in `0..n`.
fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    debug_assert!(n > 0);
    // Inverse-CDF sampling over 1/(i+1) weights.
    let h: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut u = rng.random_range(0.0..h);
    for i in 0..n {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Convenience: the Table 4 / Fig. 15 FatTree plus flow fraction.
pub fn fattree_with_flows(m: usize, fraction_percent: usize) -> (FatTree, Vec<Flow>) {
    let ft = crate::fattree::fattree(m);
    let count = (ft.max_pairwise_flows() * fraction_percent).div_ceil(100);
    let flows = ft.pairwise_flows(count, Ratio::int(5));
    (ft, flows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_valid_networks() {
        for preset in [WanPreset::N0, WanPreset::N1] {
            let w = wan(preset.params());
            assert!(w.net.validate().is_empty(), "{:?}", preset);
            assert_eq!(
                w.net.topo.num_routers(),
                preset.params().core_routers + preset.params().stub_routers
            );
            let total_prefixes: usize = w.stubs.iter().map(|(_, p)| p.len()).sum();
            assert_eq!(total_prefixes, preset.params().prefixes);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = wan(WanPreset::N0.params());
        let b = wan(WanPreset::N0.params());
        assert_eq!(a.net.topo.num_ulinks(), b.net.topo.num_ulinks());
        let fa = a.flows(100, 7);
        let fb = b.flows(100, 7);
        assert_eq!(fa, fb);
    }

    #[test]
    fn flows_are_heavy_tailed() {
        let w = wan(WanPreset::N0.params());
        let flows = w.flows(2000, 42);
        assert_eq!(flows.len(), 2000);
        // The most popular destination prefix should take a large share.
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for f in &flows {
            *counts.entry(f.dst.0 & 0xffff_ff00).or_default() += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(
            max > flows.len() / 20,
            "expected a heavy head, max bucket {max}"
        );
        assert!(flows.iter().any(|f| f.dscp == 5));
    }

    #[test]
    fn fattree_with_flows_fractions() {
        let (ft, flows) = fattree_with_flows(4, 4);
        assert_eq!(ft.pods, 4);
        // 4% of 56 ordered pairs, rounded up = 3... the paper's Table 4
        // says 2 for FT-4/4%; we use ceil so at least the paper's count.
        assert!(flows.len() >= 2 && flows.len() <= 3, "{}", flows.len());
    }
}
