//! # yu-gen
//!
//! Topology, configuration, and workload generators for the YU
//! reproduction:
//!
//! * [`scenarios`] — exact builders for the paper's worked examples:
//!   the Fig. 1 motivating network, the Fig. 9 anycast-SR overload, and
//!   the Fig. 10 static-blackhole incident;
//! * [`fattree`](mod@fattree) — FT-m FatTrees with RFC 7938-style eBGP (§7.2);
//! * [`wan`](mod@wan) — synthetic multi-AS WANs standing in for the paper's
//!   proprietary production networks (Table 3 presets N0/N1/N2/WAN),
//!   with Zipf-distributed flow workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fattree;
pub mod scenarios;
pub mod wan;

pub use fattree::{fattree, FatTree};
pub use scenarios::{
    motivating_example, preflight_example, sr_anycast_incident, static_blackhole_incident,
    MotivatingExample, PreflightExample, SrAnycastIncident, StaticBlackholeIncident,
};
pub use wan::{fattree_with_flows, wan, Wan, WanParams, WanPreset};
