//! Generator integration tests: every generated network must be
//! verifiable (BGP converges, symbolic and concrete agree on the
//! no-failure scenario) across sizes and seeds.

use yu_core::{YuOptions, YuVerifier};
use yu_gen::{fattree, wan, WanParams, WanPreset};
use yu_mtbdd::Ratio;
use yu_net::{LoadPoint, Scenario};
use yu_routing::ConcreteRoutes;

#[test]
fn all_presets_converge_concretely() {
    for preset in [WanPreset::N0, WanPreset::N1, WanPreset::N2, WanPreset::Wan] {
        let w = wan(preset.params());
        assert!(w.net.validate().is_empty(), "{}", preset.name());
        let routes = ConcreteRoutes::compute(&w.net, &Scenario::none());
        assert!(routes.converged, "{} BGP must converge", preset.name());
    }
}

#[test]
fn every_stub_prefix_is_deliverable_in_steady_state() {
    let w = wan(WanPreset::N0.params());
    let routes = ConcreteRoutes::compute(&w.net, &Scenario::none());
    for (stub, prefixes) in &w.stubs {
        for p in prefixes.iter().take(2) {
            // A flow from some *other* stub to this prefix delivers.
            let ingress = w.stubs.iter().map(|(r, _)| *r).find(|r| r != stub).unwrap();
            let dst = yu_net::Ipv4(p.addr().0 | 1);
            let flow = yu_net::Flow::new(
                ingress,
                yu_net::Ipv4::new(11, 0, 0, 1),
                dst,
                0,
                Ratio::int(1),
            );
            let res = routes.forward_flow(&flow, yu_net::DEFAULT_MAX_HOPS);
            let delivered: Ratio = res
                .delivered
                .values()
                .fold(Ratio::ZERO, |a, b| a + b.clone());
            assert_eq!(
                delivered,
                Ratio::ONE,
                "flow to {dst} from {ingress:?} must deliver"
            );
        }
    }
}

#[test]
fn fattree_all_pairs_deliver() {
    let ft = fattree(4);
    let flows = ft.pairwise_flows(ft.max_pairwise_flows(), Ratio::int(5));
    assert_eq!(flows.len(), 56);
    let routes = ConcreteRoutes::compute(&ft.net, &Scenario::none());
    for f in &flows {
        let res = routes.forward_flow(f, 16);
        let delivered: Ratio = res
            .delivered
            .values()
            .fold(Ratio::ZERO, |a, b| a + b.clone());
        assert_eq!(delivered, Ratio::ONE, "{f:?}");
    }
}

#[test]
fn fattree_steady_state_is_balanced() {
    // With all pairwise flows, symmetry should spread load evenly over
    // the four core routers' links.
    let ft = fattree(4);
    let flows = ft.pairwise_flows(ft.max_pairwise_flows(), Ratio::int(4));
    let mut v = YuVerifier::new(
        ft.net.clone(),
        YuOptions {
            k: 0,
            ..Default::default()
        },
    );
    v.add_flows(&flows);
    let s = Scenario::none();
    let mut core_loads = std::collections::BTreeSet::new();
    for l in ft.net.topo.links() {
        let to = ft.net.topo.link(l).to;
        if ft.cores.contains(&to) {
            core_loads.insert(v.load_at(LoadPoint::Link(l), &s).to_string());
        }
    }
    assert_eq!(
        core_loads.len(),
        1,
        "uniform load on core uplinks: {core_loads:?}"
    );
}

#[test]
fn wan_sr_policies_have_resolvable_segments() {
    for seed in [0u64, 5, 9] {
        let w = wan(WanParams {
            core_routers: 8,
            stub_routers: 4,
            extra_core_links: 6,
            prefixes: 16,
            sr_policies: 4,
            seed,
        });
        let routes = ConcreteRoutes::compute(&w.net, &Scenario::none());
        for r in w.net.topo.routers() {
            for pol in &w.net.config(r).sr_policies {
                for path in &pol.paths {
                    assert!(
                        routes.sr_path_valid(r, &path.segments),
                        "seed {seed}: policy on {} references unreachable segments",
                        w.net.topo.router(r).name
                    );
                }
            }
        }
    }
}

#[test]
fn dscp_marked_wan_traffic_uses_sr_paths() {
    // At least one generated instance must actually exercise SR steering
    // (policies whose endpoint matches a BGP next hop for dscp-5 flows).
    let w = wan(WanPreset::N0.params());
    let has_policy = w
        .net
        .topo
        .routers()
        .any(|r| !w.net.config(r).sr_policies.is_empty());
    assert!(has_policy, "preset must install SR policies");
}
