//! Property-based tests for the MTBDD engine: random diagrams, random
//! assignments, and the two KREDUCE lemmas of the paper's Appendix A.

use proptest::prelude::*;
use yu_mtbdd::{Mtbdd, NodeRef, Op, Ratio, Term, Var};

const NVARS: u32 = 6;

/// A little expression language for building random pseudo-boolean
/// functions both as MTBDDs and as evaluable closures.
#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Var(u8),
    NotVar(u8),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
    Ite(u8, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(Expr::Const),
        (0u8..NVARS as u8).prop_map(Expr::Var),
        (0u8..NVARS as u8).prop_map(Expr::NotVar),
    ];
    leaf.prop_recursive(4, 40, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Max(Box::new(a), Box::new(b))),
            (0u8..NVARS as u8, inner.clone(), inner).prop_map(|(v, a, b)| Expr::Ite(
                v,
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn build(m: &mut Mtbdd, e: &Expr) -> NodeRef {
    match e {
        Expr::Const(c) => m.constant(Ratio::int(*c)),
        Expr::Var(v) => m.var_guard(*v as Var),
        Expr::NotVar(v) => m.nvar_guard(*v as Var),
        Expr::Add(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Add, a, b)
        }
        Expr::Mul(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Mul, a, b)
        }
        Expr::Min(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Min, a, b)
        }
        Expr::Max(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Max, a, b)
        }
        Expr::Ite(v, a, b) => {
            let g = m.var_guard(*v as Var);
            let (a, b) = (build(m, a), build(m, b));
            m.ite(g, a, b)
        }
    }
}

fn eval_expr(e: &Expr, bits: u32) -> i64 {
    let val = |v: u8| (bits >> v & 1) as i64;
    match e {
        Expr::Const(c) => *c,
        Expr::Var(v) => val(*v),
        Expr::NotVar(v) => 1 - val(*v),
        Expr::Add(a, b) => eval_expr(a, bits) + eval_expr(b, bits),
        Expr::Mul(a, b) => eval_expr(a, bits) * eval_expr(b, bits),
        Expr::Min(a, b) => eval_expr(a, bits).min(eval_expr(b, bits)),
        Expr::Max(a, b) => eval_expr(a, bits).max(eval_expr(b, bits)),
        Expr::Ite(v, a, b) => {
            if val(*v) == 1 {
                eval_expr(a, bits)
            } else {
                eval_expr(b, bits)
            }
        }
    }
}

fn manager() -> Mtbdd {
    let mut m = Mtbdd::new();
    for _ in 0..NVARS {
        m.fresh_var();
    }
    m
}

proptest! {
    /// Every apply/ite composition agrees with direct evaluation on every
    /// assignment.
    #[test]
    fn mtbdd_matches_pointwise_semantics(e in arb_expr()) {
        let mut m = manager();
        let f = build(&mut m, &e);
        for bits in 0..(1u32 << NVARS) {
            let got = m.eval(f, |v| bits >> v & 1 == 1);
            prop_assert_eq!(got, Term::int(eval_expr(&e, bits)));
        }
    }

    /// Lemma 1: KREDUCE(F, k) agrees with F on every assignment with at
    /// most k zeros.
    #[test]
    fn kreduce_is_k_equivalent(e in arb_expr(), k in 0u32..=NVARS) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let r = m.kreduce(f, k);
        for bits in 0..(1u32 << NVARS) {
            let zeros = NVARS - bits.count_ones();
            if zeros > k {
                continue;
            }
            let a = m.eval(f, |v| bits >> v & 1 == 1);
            let b = m.eval(r, |v| bits >> v & 1 == 1);
            prop_assert_eq!(a, b, "bits {:b}, k {}", bits, k);
        }
    }

    /// Lemma 2: every path of KREDUCE(F, k) takes at most k failed (lo)
    /// edges.
    #[test]
    fn kreduce_bounds_path_failures(e in arb_expr(), k in 0u32..=NVARS) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let r = m.kreduce(f, k);
        prop_assert!(m.max_path_failures(r) <= k);
    }

    /// KREDUCE expands a diagram by at most a factor of (k + 1): every
    /// result node is some beta_j(n) for an original node n and a budget
    /// j <= k. (It can grow slightly — merging by (k-1)-equivalence may
    /// break sharing — but never beyond this bound; in practice it
    /// shrinks dramatically, which Figs. 15/16 measure.)
    #[test]
    fn kreduce_growth_is_bounded(e in arb_expr(), k in 0u32..=NVARS) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let before = m.node_count(f);
        let r = m.kreduce(f, k);
        prop_assert!(m.node_count(r) <= before * (k as usize + 1));
    }

    /// KREDUCE is idempotent and monotone in structure: reducing at k then
    /// at k again is stable.
    #[test]
    fn kreduce_idempotent(e in arb_expr(), k in 0u32..=NVARS) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let once = m.kreduce(f, k);
        let twice = m.kreduce(once, k);
        prop_assert_eq!(once, twice);
    }

    /// With the full budget, KREDUCE is the identity semantically.
    #[test]
    fn kreduce_full_budget_exact(e in arb_expr()) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let r = m.kreduce(f, NVARS);
        for bits in 0..(1u32 << NVARS) {
            let a = m.eval(f, |v| bits >> v & 1 == 1);
            let b = m.eval(r, |v| bits >> v & 1 == 1);
            prop_assert_eq!(a, b);
        }
    }

    /// find_path returns a correct witness whenever one exists.
    #[test]
    fn find_path_is_sound_and_complete(e in arb_expr(), threshold in -10i64..=10) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let t = Term::int(threshold);
        let found = m.find_path(f, |v| v > t.clone());
        let exists = (0..(1u32 << NVARS))
            .any(|bits| m.eval(f, |v| bits >> v & 1 == 1) > t);
        prop_assert_eq!(found.is_some(), exists);
        if let Some(p) = found {
            // The witness assignment actually reaches the claimed value.
            let val = m.eval(f, |v| {
                p.assignment
                    .iter()
                    .find(|(pv, _)| *pv == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(true)
            });
            prop_assert_eq!(val, p.value);
        }
    }

    /// The fused kernel is node-for-node identical to the classic
    /// pipeline: add_kreduce(f, g, k) == kreduce(add(f, g), k) as handles
    /// (both are canonical diagrams in the same arena, so pointer
    /// equality is function equality).
    #[test]
    fn fused_add_kreduce_matches_pipeline(
        ef in arb_expr(),
        eg in arb_expr(),
        k in 0u32..=NVARS,
    ) {
        let mut m = manager();
        let f = build(&mut m, &ef);
        let g = build(&mut m, &eg);
        let fused = m.add_kreduce(f, g, k);
        let sum = m.add(f, g);
        let unfused = m.kreduce(sum, k);
        prop_assert_eq!(fused, unfused);
        // And Lemma 2 holds for the fused result directly.
        prop_assert!(m.max_path_failures(fused) <= k);
    }

    /// Same for the constant-scaling variant.
    #[test]
    fn fused_scale_kreduce_matches_pipeline(
        e in arb_expr(),
        cn in -20i128..=20, cd in 1i128..=12,
        k in 0u32..=NVARS,
    ) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let c = Term::Num(Ratio::new(cn, cd));
        let fused = m.scale_kreduce(f, c.clone(), k);
        let scaled = m.scale(f, c);
        let unfused = m.kreduce(scaled, k);
        prop_assert_eq!(fused, unfused);
    }

    /// The n-ary fused aggregate is handle-identical to the left-folded
    /// binary pipeline: sum_kreduce([f1..fn], k) ==
    /// fold(add_kreduce)(f1..fn, k) == kreduce(f1 + .. + fn, k). This is
    /// what lets the sharded checker and the sequential checker produce
    /// bit-identical violating loads regardless of how operands are
    /// grouped.
    #[test]
    fn sum_kreduce_matches_folded_pipeline(
        es in proptest::collection::vec(arb_expr(), 0..6),
        k in 0u32..=NVARS,
    ) {
        let mut m = manager();
        let items: Vec<NodeRef> = es.iter().map(|e| build(&mut m, e)).collect();
        let nary = m.sum_kreduce(&items, k);
        // Left fold with the binary fused kernel.
        let folded = match items.split_first() {
            None => {
                let z = m.zero();
                m.kreduce(z, k)
            }
            Some((&first, rest)) => {
                let head = m.kreduce(first, k);
                rest.iter().fold(head, |acc, &f| m.add_kreduce(acc, f, k))
            }
        };
        prop_assert_eq!(nary, folded);
        // And against the classic unfused pipeline.
        let sum = items
            .iter()
            .fold(m.zero(), |acc, &f| m.apply(Op::Add, acc, f));
        let unfused = m.kreduce(sum, k);
        prop_assert_eq!(nary, unfused);
        prop_assert!(m.max_path_failures(nary) <= k);
    }

    /// Restriction fixes a variable: restrict(f, v, b) equals f evaluated
    /// with v := b.
    #[test]
    fn restrict_matches_eval(e in arb_expr(), v in 0u32..NVARS, b in any::<bool>()) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let r = m.restrict(f, v, b);
        for bits in 0..(1u32 << NVARS) {
            let got = m.eval(r, |x| bits >> x & 1 == 1);
            let want = m.eval(f, |x| if x == v { b } else { bits >> x & 1 == 1 });
            prop_assert_eq!(got, want);
        }
        prop_assert!(!m.support(r).contains(&v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact rational arithmetic is a field on random small fractions.
    #[test]
    fn ratio_field_laws(
        an in -50i128..=50, ad in 1i128..=20,
        bn in -50i128..=50, bd in 1i128..=20,
        cn in -50i128..=50, cd in 1i128..=20,
    ) {
        let a = Ratio::new(an, ad);
        let b = Ratio::new(bn, bd);
        let c = Ratio::new(cn, cd);
        // Commutativity and associativity.
        prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
        prop_assert_eq!(a.clone() * b.clone(), b.clone() * a.clone());
        prop_assert_eq!(
            (a.clone() + b.clone()) + c.clone(),
            a.clone() + (b.clone() + c.clone())
        );
        prop_assert_eq!(
            (a.clone() * b.clone()) * c.clone(),
            a.clone() * (b.clone() * c.clone())
        );
        // Distributivity.
        prop_assert_eq!(
            a.clone() * (b.clone() + c.clone()),
            a.clone() * b.clone() + a.clone() * c.clone()
        );
        // Inverses.
        prop_assert_eq!(a.clone() - a.clone(), Ratio::ZERO);
        if !b.is_zero() {
            prop_assert_eq!(b.clone() / b.clone(), Ratio::ONE);
        }
    }

    /// Big-integer spill arithmetic stays exact: scaling up and back down
    /// is the identity.
    #[test]
    fn ratio_big_roundtrip(n in 1i128..=1000, shift in 100u32..=140) {
        let huge = Ratio::new(n, 1) * pow2(shift);
        let back = huge.clone() / pow2(shift);
        prop_assert_eq!(back, Ratio::new(n, 1));
        let tiny = Ratio::new(n, 1) / pow2(shift);
        prop_assert!(tiny.clone() * pow2(shift) == Ratio::new(n, 1));
        prop_assert!(tiny > Ratio::ZERO);
    }
}

fn pow2(e: u32) -> Ratio {
    let mut r = Ratio::ONE;
    let two = Ratio::int(2);
    for _ in 0..e {
        r = r * two.clone();
    }
    r
}
