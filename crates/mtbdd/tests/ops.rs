//! Additional operator coverage: cache clearing, unary ops, comparison
//! guards against infinity, DOT export, and statistics.

use yu_mtbdd::{Mtbdd, Op, Op1, Ratio, Term};

#[test]
fn clear_caches_preserves_results() {
    let mut m = Mtbdd::new();
    let (x1, x2) = (m.fresh_var(), m.fresh_var());
    let g1 = m.var_guard(x1);
    let g2 = m.var_guard(x2);
    let before = m.add(g1, g2);
    m.clear_caches();
    let after = m.add(g1, g2);
    assert_eq!(before, after, "hash-consing survives cache clearing");
    assert!(m.stats().apply_cache_len >= 1);
}

#[test]
fn sub_and_neg() {
    let mut m = Mtbdd::new();
    let x = m.fresh_var();
    let g = m.var_guard(x);
    let one = m.one();
    let not_g = m.apply(Op::Sub, one, g);
    assert_eq!(not_g, m.not(g));
    let neg = m.apply1(Op1::Neg, g);
    assert_eq!(m.eval_all_alive(neg), Term::int(-1));
    assert_eq!(m.eval(neg, |_| false), Term::ZERO);
}

#[test]
fn comparison_guards_with_infinity() {
    let mut m = Mtbdd::new();
    let x = m.fresh_var();
    let g = m.var_guard(x);
    let ten = m.constant(Ratio::int(10));
    let inf = m.pos_inf();
    let dist = m.ite(g, ten, inf);
    // lt: dist < inf exactly when alive.
    let lt = m.lt_guard(dist, inf);
    assert_eq!(m.eval_all_alive(lt), Term::ONE);
    assert_eq!(m.eval(lt, |_| false), Term::ZERO);
    // eq against inf.
    let eq = m.eq_guard(dist, inf);
    assert_eq!(m.eval(eq, |_| false), Term::ONE);
    // max with inf is absorbing.
    let mx = m.apply(Op::Max, dist, ten);
    assert_eq!(m.eval(mx, |_| false), Term::PosInf);
}

#[test]
fn division_by_terminal_sum() {
    // The full ECMP pipeline on three guards: shares sum to 1 where any
    // guard holds, 0 otherwise.
    let mut m = Mtbdd::new();
    let vars: Vec<_> = (0..3).map(|_| m.fresh_var()).collect();
    let guards: Vec<_> = vars.iter().map(|&v| m.var_guard(v)).collect();
    let total = m.sum(&guards);
    let shares: Vec<_> = guards.iter().map(|&g| m.apply(Op::Div, g, total)).collect();
    let share_sum = m.sum(&shares);
    for bits in 0..8u32 {
        let got = m.eval(share_sum, |v| bits >> v & 1 == 1);
        let want = if bits == 0 { Term::ZERO } else { Term::ONE };
        assert_eq!(got, want, "bits {bits:b}");
    }
    // Each share is 1/#alive.
    let s0 = m.eval(shares[0], |v| v <= 1); // vars 0,1 alive
    assert_eq!(s0, Term::ratio(1, 2));
}

#[test]
fn dot_export_shape() {
    let mut m = Mtbdd::new();
    let (x1, x2) = (m.fresh_var(), m.fresh_var());
    let g1 = m.var_guard(x1);
    let g2 = m.var_guard(x2);
    let f0 = m.scale(g2, Term::ratio(1, 2));
    let f = m.add(g1, f0);
    let dot = m.to_dot(f, |v| format!("link{v}"));
    assert!(dot.contains("link0"));
    assert!(dot.contains("link1"));
    assert!(dot.contains("1/2"));
    assert!(dot.contains("3/2"));
    assert_eq!(dot.matches("shape=circle").count(), m.node_count(f));
}

#[test]
fn stats_monotone_until_collect() {
    let mut m = Mtbdd::new();
    let x = m.fresh_var();
    let s0 = m.stats().nodes_created;
    let g = m.var_guard(x);
    let s1 = m.stats().nodes_created;
    assert!(s1 > s0);
    let _ = m.scale(g, Term::int(7));
    assert!(m.stats().nodes_created >= s1);
    let remap = m.collect(&[g]);
    assert_eq!(m.stats().nodes_created, 1, "only the root survives");
    let g = remap.get(g);
    assert_eq!(m.eval_all_alive(g), Term::ONE);
}

#[test]
fn sum_is_order_insensitive() {
    let mut m = Mtbdd::new();
    let vars: Vec<_> = (0..5).map(|_| m.fresh_var()).collect();
    let mut items: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let g = m.var_guard(v);
            m.scale(g, Term::int(i as i64 + 1))
        })
        .collect();
    let a = m.sum(&items);
    items.reverse();
    let b = m.sum(&items);
    assert_eq!(a, b, "exact arithmetic makes summation order irrelevant");
}
