//! Model-checking the flat hash structures behind the arena manager
//! (`yu_mtbdd::table`, exported `#[doc(hidden)]` for exactly this test):
//!
//! * [`SlotTable`] — the open-addressed unique table — against a
//!   `HashMap` reference model: after any interleaving of lookups and
//!   inserts of arbitrary keys, membership and the stored index must
//!   agree with the map, the load factor must stay at or below 7/8, and
//!   a rebuilt table over the same keys must give the same answers.
//! * [`DirectCache`] — the direct-mapped memo cache — for *soundness*
//!   against a `HashMap` of everything ever inserted: `get` may miss
//!   (eviction is allowed), but it must never return a value that
//!   differs from the last insert for that key, and the
//!   hits/misses/evictions counters must reconcile with the operation
//!   count.

use proptest::prelude::*;
use std::collections::HashMap;
use yu_mtbdd::hasher::fx_hash_word;
use yu_mtbdd::table::{DirectCache, SlotTable};

/// One step of the SlotTable driver: look a key up, inserting it when
/// absent (exactly the manager's hash-consing discipline).
fn run_slot_table(keys: &[u64]) -> (SlotTable, Vec<u64>, HashMap<u64, u32>) {
    let mut t = SlotTable::new();
    // The "arena": the table stores indices into this vector only.
    let mut arena: Vec<u64> = Vec::new();
    let mut model: HashMap<u64, u32> = HashMap::new();
    for &k in keys {
        if t.needs_grow() {
            let arena = &arena;
            t.grow(|v| fx_hash_word(arena[v as usize]));
        }
        let p = t.probe(fx_hash_word(k), |v| arena[v as usize] == k);
        match (p.found, model.get(&k)) {
            (Some(ix), Some(&mix)) => assert_eq!(ix, mix, "found wrong index for {k}"),
            (None, None) => {
                let ix = arena.len() as u32;
                arena.push(k);
                t.insert_at(p.slot, ix);
                model.insert(k, ix);
            }
            (got, want) => panic!("membership diverges for {k}: table={got:?} model={want:?}"),
        }
    }
    (t, arena, model)
}

proptest! {
    /// SlotTable agrees with a HashMap on membership and stored indices
    /// under arbitrary insert/lookup interleavings (duplicates included),
    /// and respects its structural invariants.
    #[test]
    fn slot_table_matches_hashmap_model(
        keys in proptest::collection::vec(any::<u64>(), 0..400),
    ) {
        let (t, arena, model) = run_slot_table(&keys);
        prop_assert_eq!(t.len(), model.len());
        // Every model key resolves; probe lengths are finite and the
        // table never exceeds its 7/8 load-factor contract.
        for (&k, &ix) in &model {
            let p = t.probe(fx_hash_word(k), |v| arena[v as usize] == k);
            prop_assert_eq!(p.found, Some(ix));
            prop_assert!((p.steps as usize) < t.capacity().max(1));
        }
        if t.capacity() > 0 {
            prop_assert!(t.capacity().is_power_of_two());
            prop_assert!(t.len() * 8 <= t.capacity() * 7);
        }
        // Negative lookups: keys never inserted must not be found.
        for &k in keys.iter().take(32) {
            let probe_key = k.wrapping_add(0x9e37_79b9_7f4a_7c15);
            if model.contains_key(&probe_key) {
                continue;
            }
            let p = t.probe(fx_hash_word(probe_key), |v| arena[v as usize] == probe_key);
            prop_assert!(p.found.is_none());
        }
    }

    /// Rebuilding over the same key sequence is bit-deterministic:
    /// capacity and every probe's step count match run for run (the
    /// property CI's probe-length gates rely on).
    #[test]
    fn slot_table_is_deterministic(
        keys in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        let trace = |keys: &[u64]| {
            let (t, arena, model) = run_slot_table(keys);
            let mut sorted: Vec<u64> = model.keys().copied().collect();
            sorted.sort_unstable();
            let steps: Vec<u32> = sorted
                .iter()
                .map(|&k| t.probe(fx_hash_word(k), |v| arena[v as usize] == k).steps)
                .collect();
            (t.capacity(), t.len(), steps)
        };
        prop_assert_eq!(trace(&keys), trace(&keys));
    }

    /// DirectCache soundness: a hit always returns the most recent value
    /// inserted for that exact key (misses are allowed — it is a cache —
    /// but wrong values never), and its internal counters reconcile with
    /// the operation log.
    #[test]
    fn direct_cache_never_returns_a_stale_or_foreign_value(
        ops in proptest::collection::vec(
            (any::<bool>(), 0u64..64, 0u64..64, 0u32..1000),
            0..300,
        ),
    ) {
        let mut c = DirectCache::new();
        let mut model: HashMap<(u64, u64), u32> = HashMap::new();
        let mut lookups = 0u64;
        for (is_insert, w0, w1, val) in ops {
            if is_insert {
                c.insert(w0, w1, val);
                model.insert((w0, w1), val);
            } else {
                lookups += 1;
                match c.get(w0, w1) {
                    // An eviction may have dropped the entry, but a
                    // resident value must be exactly the last insert.
                    Some(got) => prop_assert_eq!(Some(&got), model.get(&(w0, w1))),
                    None => {}
                }
            }
        }
        prop_assert_eq!(c.hits() + c.misses(), lookups);
        prop_assert!(c.len() <= model.len());
        prop_assert!(c.len() <= c.capacity());
    }
}
