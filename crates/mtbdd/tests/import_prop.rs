//! Property-based tests for cross-arena import: a random MTBDD
//! round-tripped through `Mtbdd::import` into a fresh arena must evaluate
//! identically under all (sampled) assignments, pass the structural
//! audit, and unify with natively built equal diagrams.

use proptest::prelude::*;
use yu_mtbdd::{ImportMemo, Mtbdd, NodeRef, Op, Ratio, Var};

const NVARS: u32 = 6;

/// Random pseudo-boolean functions, buildable in any arena.
#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Var(u8),
    NotVar(u8),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(Expr::Const),
        (0u8..NVARS as u8).prop_map(Expr::Var),
        (0u8..NVARS as u8).prop_map(Expr::NotVar),
    ];
    leaf.prop_recursive(4, 40, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(m: &mut Mtbdd, e: &Expr) -> NodeRef {
    match e {
        Expr::Const(c) => m.constant(Ratio::int(*c)),
        Expr::Var(v) => m.var_guard(*v as Var),
        Expr::NotVar(v) => m.nvar_guard(*v as Var),
        Expr::Add(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Add, a, b)
        }
        Expr::Mul(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Mul, a, b)
        }
        Expr::Min(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Min, a, b)
        }
        Expr::Max(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Max, a, b)
        }
    }
}

fn manager() -> Mtbdd {
    let mut m = Mtbdd::new();
    for _ in 0..NVARS {
        m.fresh_var();
    }
    m
}

proptest! {
    /// Import preserves semantics on every assignment and the imported
    /// diagram passes the full structural audit in the target arena.
    #[test]
    fn import_roundtrip_evaluates_identically(e in arb_expr()) {
        let mut src = manager();
        let f = build(&mut src, &e);
        let mut dst = manager();
        let mut memo = ImportMemo::new();
        let g = dst.import(&src, f, &mut memo);
        for bits in 0..(1u32 << NVARS) {
            let assign = |v: u32| bits >> v & 1 == 1;
            prop_assert_eq!(src.eval(f, assign), dst.eval(g, assign), "bits {:b}", bits);
        }
        let report = dst.audit(&[g]);
        prop_assert!(report.ok(), "audit after import: {:?}", report.violations);
    }

    /// Import is canonicalizing: the import equals the natively built
    /// diagram (pointer equality), twice-imported roots hit the memo,
    /// and a second round-trip through a third arena is stable.
    #[test]
    fn import_is_canonical_and_memoized(e in arb_expr()) {
        let mut src = manager();
        let f = build(&mut src, &e);
        let mut dst = manager();
        let native = build(&mut dst, &e);
        let mut memo = ImportMemo::new();
        let imported = dst.import(&src, f, &mut memo);
        prop_assert_eq!(imported, native, "import must unify with native build");
        let translated = memo.len();
        prop_assert_eq!(dst.import(&src, f, &mut memo), imported);
        prop_assert_eq!(memo.len(), translated, "re-import must not copy again");
        // Round-trip through a third arena.
        let mut third = manager();
        let mut memo2 = ImportMemo::new();
        let h = third.import(&dst, imported, &mut memo2);
        prop_assert_eq!(third.node_count(h), dst.node_count(imported));
    }

    /// Import commutes with KREDUCE: importing a reduced diagram gives
    /// the same node as reducing the imported diagram, and Lemma 2's
    /// path-failure bound survives the copy.
    #[test]
    fn import_commutes_with_kreduce(e in arb_expr(), k in 0u32..=NVARS) {
        let mut src = manager();
        let f = build(&mut src, &e);
        let rf = src.kreduce(f, k);
        let mut dst = manager();
        let mut memo = ImportMemo::new();
        let g = dst.import(&src, f, &mut memo);
        let rg = dst.kreduce(g, k);
        let imported_rf = dst.import(&src, rf, &mut memo);
        prop_assert_eq!(imported_rf, rg, "KREDUCE then import != import then KREDUCE");
        prop_assert!(dst.max_path_failures(imported_rf) <= k);
        let report = dst.audit_kreduced(imported_rf, k);
        prop_assert!(report.ok(), "{:?}", report.violations);
    }
}
