//! Property-based test for the MTBDD auditor: after an arbitrary random
//! sequence of apply / ite / restrict / kreduce / GC operations, a full
//! `Mtbdd::audit` pass over every live handle must report no violations.

use proptest::prelude::*;
use yu_mtbdd::{Mtbdd, Op, Op1, Ratio, Var};

const NVARS: u32 = 5;

/// One step of a random operation sequence. Operand indices are taken
/// modulo the current pool size, so any index is valid.
#[derive(Debug, Clone)]
enum Step {
    Const(i64),
    Guard(u8),
    NotGuard(u8),
    Apply(u8, usize, usize),
    Apply1(u8, usize),
    Ite(usize, usize, usize),
    Restrict(usize, u8, bool),
    Kreduce(usize, u8),
    Gc,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (-9i64..=9).prop_map(Step::Const),
        (0u8..NVARS as u8).prop_map(Step::Guard),
        (0u8..NVARS as u8).prop_map(Step::NotGuard),
        (0u8..7, 0usize..64, 0usize..64).prop_map(|(o, a, b)| Step::Apply(o, a, b)),
        (0u8..2, 0usize..64).prop_map(|(o, a)| Step::Apply1(o, a)),
        (0usize..64, 0usize..64, 0usize..64).prop_map(|(c, t, e)| Step::Ite(c, t, e)),
        (0usize..64, 0u8..NVARS as u8, any::<bool>())
            .prop_map(|(f, v, val)| Step::Restrict(f, v, val)),
        (0usize..64, 0u8..=4).prop_map(|(f, k)| Step::Kreduce(f, k)),
        Just(Step::Gc),
    ]
}

fn binop(code: u8) -> Op {
    // Div is excluded (random operands hit ∞/∞, deliberately a panic in
    // the terminal algebra), as are Or/And (they require 0/1 operands);
    // the guard comparisons exercise the boolean-producing path instead.
    [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Min,
        Op::Max,
        Op::EqGuard,
        Op::LtGuard,
    ][code as usize % 7]
}

fn unop(code: u8) -> Op1 {
    [Op1::IsFiniteGuard, Op1::Neg][code as usize % 2]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn audit_passes_after_random_op_sequences(steps in proptest::collection::vec(arb_step(), 1..60)) {
        let mut m = Mtbdd::new();
        m.fresh_vars(NVARS);
        let mut pool = vec![m.zero(), m.one()];
        for step in &steps {
            let pick = |ix: usize, pool: &Vec<_>| pool[ix % pool.len()];
            let r = match *step {
                Step::Const(c) => m.constant(Ratio::int(c)),
                Step::Guard(v) => m.var_guard(v as Var),
                Step::NotGuard(v) => m.nvar_guard(v as Var),
                Step::Apply(o, a, b) => {
                    let (a, b) = (pick(a, &pool), pick(b, &pool));
                    m.apply(binop(o), a, b)
                }
                Step::Apply1(o, a) => {
                    let a = pick(a, &pool);
                    m.apply1(unop(o), a)
                }
                Step::Ite(c, t, e) => {
                    let c = pick(c, &pool);
                    let g = m.is_finite_guard(c); // any pool entry, coerced to a guard
                    let (t, e) = (pick(t, &pool), pick(e, &pool));
                    m.ite(g, t, e)
                }
                Step::Restrict(f, v, val) => {
                    let f = pick(f, &pool);
                    m.restrict(f, v as Var, val)
                }
                Step::Kreduce(f, k) => {
                    let f = pick(f, &pool);
                    m.kreduce(f, k as u32)
                }
                Step::Gc => {
                    let remap = m.collect(&pool);
                    for h in pool.iter_mut() {
                        *h = remap.get(*h);
                    }
                    continue;
                }
            };
            pool.push(r);
        }
        let report = m.audit(&pool);
        prop_assert!(report.ok(), "audit violations after {} steps: {:?}", steps.len(), report.violations);
        prop_assert!(report.nodes_checked > 0 || pool.iter().all(|h| h.is_terminal()));
    }
}
