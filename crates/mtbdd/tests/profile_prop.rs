//! Property-based tests for the read-only profiler (`profile.rs`):
//! on random MTBDDs the per-level histogram must total exactly the
//! reachable node count, the walk must be side-effect free, and the
//! cache profiles must stay consistent with `MtbddStats`.

use proptest::prelude::*;
use yu_mtbdd::{Mtbdd, NodeRef, Op, Ratio, Var};

const NVARS: u32 = 6;

/// Random pseudo-boolean functions (same family as the import suite).
#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Var(u8),
    NotVar(u8),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..=20).prop_map(Expr::Const),
        (0u8..NVARS as u8).prop_map(Expr::Var),
        (0u8..NVARS as u8).prop_map(Expr::NotVar),
    ];
    leaf.prop_recursive(4, 40, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Max(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(m: &mut Mtbdd, e: &Expr) -> NodeRef {
    match e {
        Expr::Const(c) => m.constant(Ratio::int(*c)),
        Expr::Var(v) => m.var_guard(*v as Var),
        Expr::NotVar(v) => m.nvar_guard(*v as Var),
        Expr::Add(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Add, a, b)
        }
        Expr::Mul(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Mul, a, b)
        }
        Expr::Min(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Min, a, b)
        }
        Expr::Max(a, b) => {
            let (a, b) = (build(m, a), build(m, b));
            m.apply(Op::Max, a, b)
        }
    }
}

fn manager() -> Mtbdd {
    let mut m = Mtbdd::new();
    for _ in 0..NVARS {
        m.fresh_var();
    }
    m
}

proptest! {
    /// The level histogram of a single root totals exactly
    /// `node_count(root)`, every level is within the allocated variable
    /// range, and levels come out sorted top-of-diagram first.
    #[test]
    fn level_profile_totals_match_node_count(e in arb_expr()) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let p = m.level_profile(&[f]);
        prop_assert_eq!(p.inner_nodes, m.node_count(f));
        prop_assert_eq!(p.inner_nodes, p.levels.iter().map(|l| l.nodes).sum::<usize>());
        for w in p.levels.windows(2) {
            prop_assert!(w[0].var < w[1].var, "levels must be sorted and unique");
        }
        for l in &p.levels {
            prop_assert!(l.var < NVARS);
            prop_assert!(l.nodes > 0, "empty levels must be omitted");
        }
        // The support of f is exactly the set of non-empty levels.
        let support = m.support(f);
        let levels: std::collections::BTreeSet<Var> =
            p.levels.iter().map(|l| l.var).collect();
        prop_assert_eq!(support, levels);
    }

    /// Multi-root profiles count the *union* of the sub-diagrams: total
    /// is bounded by the per-root sum (shared nodes counted once) and
    /// at least the largest single root.
    #[test]
    fn level_profile_of_roots_is_a_union(a in arb_expr(), b in arb_expr()) {
        let mut m = manager();
        let f = build(&mut m, &a);
        let g = build(&mut m, &b);
        let pf = m.node_count(f);
        let pg = m.node_count(g);
        let both = m.level_profile(&[f, g]);
        prop_assert!(both.inner_nodes <= pf + pg);
        prop_assert!(both.inner_nodes >= pf.max(pg));
        if f == g {
            prop_assert_eq!(both.inner_nodes, pf);
        }
    }

    /// Profiling is read-only: the walk and the cache profiles leave the
    /// arena, its caches, and its statistics bit-identical.
    #[test]
    fn profiling_is_side_effect_free(e in arb_expr()) {
        let mut m = manager();
        let f = build(&mut m, &e);
        let reduced = m.kreduce(f, 2);
        let before = m.stats();
        let _ = m.level_profile(&[f, reduced]);
        let caches = m.cache_profiles();
        let _ = m.engine_profile();
        let after = m.stats();
        prop_assert_eq!(before, after, "profiling must not perturb the manager");
        // Cache profiles agree with the stats they summarize.
        prop_assert_eq!(caches[0].len, after.apply_cache_len);
        prop_assert_eq!(caches[0].hits, after.apply_cache_hits);
        prop_assert_eq!(caches[0].misses, after.apply_cache_misses);
        prop_assert_eq!(caches[1].len, after.fused_cache_len);
        // Rebuilding the same expression is pure cache/unique-table hits:
        // node-for-node the same handle.
        let f2 = build(&mut m, &e);
        prop_assert_eq!(f, f2);
    }
}
