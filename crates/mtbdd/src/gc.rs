//! Garbage collection: mark-compact over the flat node arena.
//!
//! Verifying a TLP aggregates per-link symbolic loads whose intermediate
//! diagrams are dead the moment the link's terminals have been scanned —
//! but a hash-consing arena never frees nodes. [`Mtbdd::collect`] marks
//! the sub-diagrams reachable from a set of roots, slides the survivors
//! down in place, rebuilds the unique table from the compacted arena, and
//! drops everything else (including all operation caches), returning the
//! old-to-new handle mapping so long-lived holders (guarded RIBs, flow
//! STFs) can remap. On production-sized runs this is the difference
//! between a bounded working set and memory exhaustion.
//!
//! The compaction slides ascending in one pass: the bump-allocated arena
//! guarantees every node's children have strictly lower indices, so by
//! the time a node is moved its children's new indices are already known.

use crate::manager::{hash_node, Mtbdd};
use crate::node::NodeRef;
use crate::table::SlotTable;

/// The old-to-new handle mapping returned by [`Mtbdd::collect`].
///
/// Backed by two dense index tables (one for inner nodes, one for
/// terminals); handles that were not reachable from the collection roots
/// are not mapped and are invalid after the collection.
pub struct Remap {
    nodes: Vec<u32>,
    terms: Vec<u32>,
}

const DEAD: u32 = u32::MAX;

impl Remap {
    /// Translates an old handle.
    ///
    /// # Panics
    /// Panics if `old` was not reachable from the collection roots.
    pub fn get(&self, old: NodeRef) -> NodeRef {
        self.try_get(old)
            .expect("NodeRef was not registered as a GC root")
    }

    /// Translates an old handle if it was live.
    pub fn try_get(&self, old: NodeRef) -> Option<NodeRef> {
        let table = if old.is_terminal() {
            &self.terms
        } else {
            &self.nodes
        };
        match table.get(old.index()) {
            Some(&raw) if raw != DEAD => Some(NodeRef(raw)),
            _ => None,
        }
    }
}

impl Mtbdd {
    /// Compacts the arena down to the sub-diagrams reachable from
    /// `roots`, freeing all other nodes and every operation cache.
    /// Returns the handle remapping; all previously held [`NodeRef`]s
    /// must be translated through it (or dropped). The singleton
    /// constants (`0`, `1`, `+∞`) always survive in place, but are only
    /// present in the remapping when reachable from a root.
    ///
    /// # Panics
    /// Panics on an overlay manager (see [`Mtbdd::with_base`]): overlays
    /// are short-lived scratch arenas, and compacting one would have to
    /// rewrite handles into the shared immutable base.
    pub fn collect(&mut self, roots: &[NodeRef]) -> Remap {
        assert!(
            self.base.is_none(),
            "collect() on an overlay manager is not supported"
        );
        let before_nodes = self.nodes.len();

        // Mark phase: flag every node and terminal reachable from roots.
        let mut node_mark = vec![false; self.nodes.len()];
        let mut term_mark = vec![false; self.terms.len()];
        let mut stack: Vec<NodeRef> = roots.to_vec();
        while let Some(r) = stack.pop() {
            if r.is_terminal() {
                term_mark[r.index()] = true;
                continue;
            }
            if node_mark[r.index()] {
                continue;
            }
            node_mark[r.index()] = true;
            let n = self.nodes[r.index()];
            stack.push(n.lo);
            stack.push(n.hi);
        }

        // Compact terminals. The singleton constants are kept alive even
        // when unmarked — the manager hands out their handles without
        // going through the remap — but only marked terminals enter it.
        let mut keep_term = term_mark.clone();
        for c in [self.zero(), self.one(), self.pos_inf()] {
            keep_term[c.index()] = true;
        }
        let mut term_new = vec![DEAD; self.terms.len()];
        let mut new_terms = Vec::new();
        for (ix, keep) in keep_term.iter().enumerate() {
            if *keep {
                term_new[ix] = NodeRef::terminal(new_terms.len()).0;
                new_terms.push(self.terms[ix].clone());
            }
        }
        debug_assert_eq!(NodeRef(term_new[self.zero().index()]), self.zero());
        debug_assert_eq!(NodeRef(term_new[self.one().index()]), self.one());
        debug_assert_eq!(NodeRef(term_new[self.pos_inf().index()]), self.pos_inf());
        self.terms = new_terms;
        self.term_ids = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), NodeRef::terminal(i)))
            .collect();

        // Compact nodes, sliding survivors down in ascending order. Bump
        // allocation guarantees children precede parents, so child
        // remappings are always resolved before they are read.
        let mut node_new = vec![DEAD; self.nodes.len()];
        let mut write = 0usize;
        for ix in 0..self.nodes.len() {
            if !node_mark[ix] {
                continue;
            }
            let n = self.nodes[ix];
            let remap_child = |r: NodeRef| {
                if r.is_terminal() {
                    NodeRef(term_new[r.index()])
                } else {
                    NodeRef(node_new[r.index()])
                }
            };
            let (lo, hi) = (remap_child(n.lo), remap_child(n.hi));
            debug_assert!(lo.0 != DEAD && hi.0 != DEAD, "live node with dead child");
            self.nodes[write] = crate::node::Node { var: n.var, lo, hi };
            node_new[ix] = NodeRef::inner(write).0;
            write += 1;
        }
        self.nodes.truncate(write);

        // Rebuild the unique table from the compacted arena.
        let mut unique = SlotTable::new();
        for (i, n) in self.nodes.iter().enumerate() {
            unique.insert_new(hash_node(n), i as u32, |ix| {
                hash_node(&self.nodes[ix as usize])
            });
        }
        self.unique = unique;

        // Every resident cache entry refers to pre-compaction handles:
        // drop them all (each is booked as an eviction by its cache).
        self.clear_caches();

        // Cumulative counters survive in place; fold in this collection.
        self.unique_peak = self.unique_peak.max(before_nodes);
        self.gc_runs += 1;
        self.gc_reclaimed += (before_nodes - write) as u64;

        // Only root-reachable terminals enter the remapping (constants
        // kept alive above are addressable via the manager, not the map).
        let mut terms = vec![DEAD; term_mark.len()];
        for (ix, marked) in term_mark.iter().enumerate() {
            if *marked {
                terms[ix] = term_new[ix];
            }
        }
        let remap = Remap {
            nodes: node_new,
            terms,
        };
        if self.audit_on() {
            let live: Vec<NodeRef> = roots.iter().map(|&r| remap.get(r)).collect();
            self.audit(&live).assert_ok("post-GC arena");
        }
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ratio, Term};

    #[test]
    fn collect_preserves_live_semantics_and_frees_garbage() {
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let live0 = m.scale(g1, Term::int(40));
        let live = m.add(live0, g2);
        // Garbage: a bunch of unrelated diagrams.
        for i in 0..50 {
            let g3 = m.var_guard(x3);
            let s = m.scale(g3, Term::int(i));
            let _ = m.add(s, g1);
        }
        let before = m.stats().nodes_created;
        let remap = m.collect(&[live]);
        let live2 = remap.get(live);
        let after = m.stats().nodes_created;
        assert!(
            after < before,
            "GC must shrink the arena ({after} vs {before})"
        );
        for bits in 0..8u32 {
            let assign = |v: u32| bits >> v & 1 == 1;
            let want = Ratio::int(40 * (bits & 1) as i64) + Ratio::int((bits >> 1 & 1) as i64);
            assert_eq!(m.eval(live2, assign), Term::Num(want));
        }
    }

    #[test]
    fn collect_tracks_gc_counters_and_peak() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let live = m.add(g1, g2);
        for i in 0..20 {
            let s = m.scale(g2, Term::int(i));
            let _ = m.add(s, g1);
        }
        let before = m.stats();
        assert_eq!(before.gc_runs, 0);
        let _remap = m.collect(&[live]);
        let after = m.stats();
        assert_eq!(after.gc_runs, 1);
        assert!(after.gc_reclaimed_nodes > 0);
        assert_eq!(
            after.gc_reclaimed_nodes as usize,
            before.nodes_created - after.nodes_created
        );
        assert!(
            after.unique_table_peak >= before.nodes_created,
            "peak must remember the pre-GC table size"
        );
        // Hit/miss counters are cumulative across the collection.
        assert_eq!(after.apply_cache_misses, before.apply_cache_misses);
        assert_eq!(after.apply_cache_hits, before.apply_cache_hits);
        // A second collection keeps accumulating.
        let live2 = m.var_guard(x1);
        let _ = m.collect(&[live2]);
        assert_eq!(m.stats().gc_runs, 2);
    }

    #[test]
    fn collect_keeps_hash_consing_identities() {
        let mut m = Mtbdd::new();
        let x1 = m.fresh_var();
        let a = m.var_guard(x1);
        let b = m.nvar_guard(x1);
        let remap = m.collect(&[a, b]);
        let (a2, b2) = (remap.get(a), remap.get(b));
        assert_ne!(a2, b2);
        // Rebuilding the same functions reuses the copied nodes.
        assert_eq!(m.var_guard(x1), a2);
        assert_eq!(m.nvar_guard(x1), b2);
        // Dead handles are reported as such.
        assert!(remap.try_get(NodeRef(9999)).is_none());
    }

    #[test]
    fn collect_constants_survive() {
        let mut m = Mtbdd::new();
        let _ = m.fresh_var();
        let z = m.zero();
        let remap = m.collect(&[]);
        assert!(remap.try_get(z).is_none()); // not a root, so not mapped...
                                             // ...but the singleton constants of the fresh arena are intact.
        assert_eq!(m.eval_all_alive(m.zero()), Term::ZERO);
        assert_eq!(m.eval_all_alive(m.one()), Term::ONE);
    }

    #[test]
    fn ops_work_after_collection() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let f = m.add(g1, g2);
        let remap = m.collect(&[f]);
        let f = remap.get(f);
        let g = m.var_guard(x1);
        let sum = m.add(f, g);
        assert_eq!(m.eval_all_alive(sum), Term::int(3));
        let r = m.kreduce(sum, 1);
        assert_eq!(m.eval_all_alive(r), Term::int(3));
    }

    #[test]
    fn collect_compacts_in_place_and_reuses_low_indices() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        // Garbage first, so live nodes start at high indices.
        for i in 0..30 {
            let g = m.var_guard(x2);
            let _ = m.scale(g, Term::int(i + 5));
        }
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let live = m.add(g1, g2);
        let old_index = live.index();
        let remap = m.collect(&[live]);
        let live2 = remap.get(live);
        assert!(
            live2.index() < old_index,
            "survivors must slide down ({} -> {})",
            old_index,
            live2.index()
        );
        assert!(live2.index() < m.live_nodes());
        assert_eq!(m.eval_all_alive(live2), Term::int(2));
    }
}
