//! Garbage collection: semispace copying of live sub-diagrams.
//!
//! Verifying a TLP aggregates per-link symbolic loads whose intermediate
//! diagrams are dead the moment the link's terminals have been scanned —
//! but a hash-consing arena never frees nodes. [`Mtbdd::collect`] copies
//! the sub-diagrams reachable from a set of roots into a fresh arena and
//! drops everything else (including all operation caches), returning the
//! old-to-new handle mapping so long-lived holders (guarded RIBs, flow
//! STFs) can remap. On production-sized runs this is the difference
//! between a bounded working set and memory exhaustion.

use crate::hasher::FxHashMap;
use crate::manager::Mtbdd;
use crate::node::NodeRef;

/// The old-to-new handle mapping returned by [`Mtbdd::collect`].
///
/// Handles not in the map referred to garbage and are invalid after the
/// collection.
pub struct Remap {
    map: FxHashMap<NodeRef, NodeRef>,
}

impl Remap {
    /// Translates an old handle.
    ///
    /// # Panics
    /// Panics if `old` was not reachable from the collection roots.
    pub fn get(&self, old: NodeRef) -> NodeRef {
        *self
            .map
            .get(&old)
            .expect("NodeRef was not registered as a GC root")
    }

    /// Translates an old handle if it was live.
    pub fn try_get(&self, old: NodeRef) -> Option<NodeRef> {
        self.map.get(&old).copied()
    }
}

impl Mtbdd {
    /// Copies every sub-diagram reachable from `roots` into a fresh
    /// arena, freeing all other nodes and every operation cache. Returns
    /// the handle remapping; all previously held [`NodeRef`]s must be
    /// translated through it (or dropped).
    pub fn collect(&mut self, roots: &[NodeRef]) -> Remap {
        let before = self.stats();
        let mut fresh = Mtbdd::new();
        fresh.fresh_vars(self.num_vars());
        let mut memo = crate::ImportMemo::new();
        for &root in roots {
            fresh.import_rec(self, root, &mut memo);
        }
        // Cumulative counters survive the collection: carry them into the
        // fresh arena, fold in this collection's reclaim, and keep the
        // unique-table high-water mark across the swap.
        fresh.apply_cache_hits = self.apply_cache_hits;
        fresh.apply_cache_misses = self.apply_cache_misses;
        fresh.fused_cache_hits = self.fused_cache_hits;
        fresh.fused_cache_misses = self.fused_cache_misses;
        fresh.unique_peak = before.unique_table_peak;
        fresh.gc_runs = self.gc_runs + 1;
        // Profiling counters are cumulative too: the collection drops
        // every resident cache entry (an eviction each), and the kernel
        // depth maxima must not reset with the arena swap.
        fresh.apply_cache_evicted = self.apply_cache_evicted + before.apply_cache_len as u64;
        fresh.fused_cache_evicted = self.fused_cache_evicted + before.fused_cache_len as u64;
        fresh.prof_apply_depth_max = self.prof_apply_depth_max;
        fresh.prof_fused_depth_max = self.prof_fused_depth_max;
        fresh.prof_kreduce_depth_max = self.prof_kreduce_depth_max;
        let live = fresh.stats().nodes_created;
        fresh.gc_reclaimed = self.gc_reclaimed + before.nodes_created.saturating_sub(live) as u64;
        let map = memo.into_map();
        if fresh.audit_on() {
            let live: Vec<NodeRef> = map.values().copied().collect();
            fresh.audit(&live).assert_ok("post-GC arena");
        }
        *self = fresh;
        Remap { map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ratio, Term};

    #[test]
    fn collect_preserves_live_semantics_and_frees_garbage() {
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let live0 = m.scale(g1, Term::int(40));
        let live = m.add(live0, g2);
        // Garbage: a bunch of unrelated diagrams.
        for i in 0..50 {
            let g3 = m.var_guard(x3);
            let s = m.scale(g3, Term::int(i));
            let _ = m.add(s, g1);
        }
        let before = m.stats().nodes_created;
        let remap = m.collect(&[live]);
        let live2 = remap.get(live);
        let after = m.stats().nodes_created;
        assert!(
            after < before,
            "GC must shrink the arena ({after} vs {before})"
        );
        for bits in 0..8u32 {
            let assign = |v: u32| bits >> v & 1 == 1;
            let want = Ratio::int(40 * (bits & 1) as i64) + Ratio::int((bits >> 1 & 1) as i64);
            assert_eq!(m.eval(live2, assign), Term::Num(want));
        }
    }

    #[test]
    fn collect_tracks_gc_counters_and_peak() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let live = m.add(g1, g2);
        for i in 0..20 {
            let s = m.scale(g2, Term::int(i));
            let _ = m.add(s, g1);
        }
        let before = m.stats();
        assert_eq!(before.gc_runs, 0);
        let _remap = m.collect(&[live]);
        let after = m.stats();
        assert_eq!(after.gc_runs, 1);
        assert!(after.gc_reclaimed_nodes > 0);
        assert_eq!(
            after.gc_reclaimed_nodes as usize,
            before.nodes_created - after.nodes_created
        );
        assert!(
            after.unique_table_peak >= before.nodes_created,
            "peak must remember the pre-GC table size"
        );
        // Hit/miss counters are cumulative across the collection.
        assert_eq!(after.apply_cache_misses, before.apply_cache_misses);
        assert_eq!(after.apply_cache_hits, before.apply_cache_hits);
        // A second collection keeps accumulating.
        let live2 = m.var_guard(x1);
        let _ = m.collect(&[live2]);
        assert_eq!(m.stats().gc_runs, 2);
    }

    #[test]
    fn collect_keeps_hash_consing_identities() {
        let mut m = Mtbdd::new();
        let x1 = m.fresh_var();
        let a = m.var_guard(x1);
        let b = m.nvar_guard(x1);
        let remap = m.collect(&[a, b]);
        let (a2, b2) = (remap.get(a), remap.get(b));
        assert_ne!(a2, b2);
        // Rebuilding the same functions reuses the copied nodes.
        assert_eq!(m.var_guard(x1), a2);
        assert_eq!(m.nvar_guard(x1), b2);
        // Dead handles are reported as such.
        assert!(remap.try_get(NodeRef(9999)).is_none());
    }

    #[test]
    fn collect_constants_survive() {
        let mut m = Mtbdd::new();
        let _ = m.fresh_var();
        let z = m.zero();
        let remap = m.collect(&[]);
        assert!(remap.try_get(z).is_none()); // not a root, so not mapped...
                                             // ...but the singleton constants of the fresh arena are intact.
        assert_eq!(m.eval_all_alive(m.zero()), Term::ZERO);
        assert_eq!(m.eval_all_alive(m.one()), Term::ONE);
    }

    #[test]
    fn ops_work_after_collection() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let f = m.add(g1, g2);
        let remap = m.collect(&[f]);
        let f = remap.get(f);
        let g = m.var_guard(x1);
        let sum = m.add(f, g);
        assert_eq!(m.eval_all_alive(sum), Term::int(3));
        let r = m.kreduce(sum, 1);
        assert_eq!(m.eval_all_alive(r), Term::int(3));
    }
}
