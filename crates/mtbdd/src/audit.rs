//! Invariant auditing for the hash-consed MTBDD manager.
//!
//! YU's soundness rests on structural invariants of the diagram — the
//! fixed variable order, canonicity (`mk` elides redundant tests), the
//! unique tables that make function equality pointer equality, and the
//! `KREDUCE` postcondition of Lemma 2 (every root-to-terminal path of
//! `βₖ(f)` takes at most `k` failed edges). A silently broken invariant
//! produces a wrong verdict, not an error, so this module provides
//! [`Mtbdd::audit`]: a structured pass over the arena returning an
//! [`AuditReport`] instead of asserting piecemeal.
//!
//! Auditing is also wired into the manager itself at choke points —
//! after every public [`Mtbdd::kreduce`] (postcondition check), after
//! GC (full audit of the fresh arena), and as a sampled re-evaluation
//! of apply-cache entries on cache hits/inserts (to catch cache
//! poisoning, e.g. from a stale handle surviving a collection). The
//! hooks are active when the `YU_AUDIT` environment variable is `1`,
//! or by default in builds with `debug_assertions` (set `YU_AUDIT=0`
//! to force them off).

use crate::manager::{Mtbdd, Op};
use crate::node::NodeRef;
use std::fmt;
use std::sync::OnceLock;

/// Which invariant an [`AuditViolation`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditCheck {
    /// Variable indices must strictly increase along every edge.
    VariableOrder,
    /// No inner node may have `lo == hi` (canonicity of `mk`).
    Canonicity,
    /// The unique table must map exactly the arena's nodes: no two live
    /// `NodeRef`s with identical `(var, lo, hi)`.
    UniqueTable,
    /// The terminal table must map exactly the arena's terminals.
    TerminalDedup,
    /// A guard MTBDD must be 0/1-valued.
    GuardBoolean,
    /// `max_path_failures(βₖ(f)) ≤ k` (Lemma 2).
    KreducePostcondition,
    /// A memoized apply result must re-evaluate consistently.
    ApplyCache,
}

impl fmt::Display for AuditCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AuditCheck::VariableOrder => "variable-order",
            AuditCheck::Canonicity => "canonicity",
            AuditCheck::UniqueTable => "unique-table",
            AuditCheck::TerminalDedup => "terminal-dedup",
            AuditCheck::GuardBoolean => "guard-boolean",
            AuditCheck::KreducePostcondition => "kreduce-postcondition",
            AuditCheck::ApplyCache => "apply-cache",
        };
        f.write_str(name)
    }
}

/// One broken invariant found by an audit pass.
#[derive(Debug, Clone)]
pub struct AuditViolation {
    /// The invariant that failed.
    pub check: AuditCheck,
    /// The offending node, when the violation is attributable to one.
    pub node: Option<NodeRef>,
    /// Details of the failure.
    pub message: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{}] node {:?}: {}", self.check, n, self.message),
            None => write!(f, "[{}] {}", self.check, self.message),
        }
    }
}

/// The result of an audit pass. Empty `violations` means every checked
/// invariant holds.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// All invariant violations found (empty when the manager is sound).
    pub violations: Vec<AuditViolation>,
    /// Inner nodes visited by reachability checks.
    pub nodes_checked: usize,
    /// Apply-cache entries re-evaluated.
    pub cache_entries_checked: usize,
}

impl AuditReport {
    /// True when no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with every violation when the report is not clean.
    ///
    /// Used by the internal choke-point hooks: a broken MTBDD invariant
    /// means any verdict computed from here on is untrustworthy, so
    /// aborting loudly beats continuing silently.
    pub fn assert_ok(&self, context: &str) {
        if !self.ok() {
            let mut msg = format!(
                "MTBDD audit failed ({context}): {} violation(s)\n",
                self.violations.len()
            );
            for v in &self.violations {
                msg.push_str(&format!("  {v}\n"));
            }
            panic!("{msg}");
        }
    }

    fn push(&mut self, check: AuditCheck, node: Option<NodeRef>, message: String) {
        self.violations.push(AuditViolation {
            check,
            node,
            message,
        });
    }
}

/// Whether audit hooks are globally enabled: `YU_AUDIT=1` forces on,
/// `YU_AUDIT=0` forces off, unset defaults to `cfg!(debug_assertions)`.
pub fn audit_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("YU_AUDIT") {
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") => false,
        Ok(v) if !v.is_empty() => true,
        _ => cfg!(debug_assertions),
    })
}

/// How many apply operations between sampled cache re-validations.
const APPLY_SAMPLE_PERIOD: u64 = 1024;

/// Cache entries re-evaluated by a full [`Mtbdd::audit`] pass.
const FULL_AUDIT_CACHE_SAMPLES: usize = 64;

impl Mtbdd {
    /// Audits the structural invariants of this manager.
    ///
    /// Reachability checks (variable order, canonicity) walk the
    /// sub-diagrams of `roots`; table-consistency checks (unique table,
    /// terminal dedup) cover the whole arena; and a bounded sample of
    /// apply/apply1 cache entries is re-evaluated against fresh
    /// pointwise evaluation. Runs in `O(arena + reachable + samples)`.
    pub fn audit(&self, roots: &[NodeRef]) -> AuditReport {
        let mut report = AuditReport::default();
        self.audit_tables(&mut report);
        self.audit_reachable(roots, &mut report);
        self.audit_cache_sample(&mut report);
        report
    }

    /// Audits `f` as a guard: structural checks plus 0/1-valuedness of
    /// every reachable terminal.
    pub fn audit_guard(&self, f: NodeRef) -> AuditReport {
        let mut report = self.audit(&[f]);
        let mut stack = vec![f];
        let mut seen = std::collections::HashSet::new();
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            if r.is_terminal() {
                if self.audit_terminal_index_ok(r) {
                    let t = self.terminal_value(r);
                    if !t.is_zero() && !t.is_one() {
                        report.push(
                            AuditCheck::GuardBoolean,
                            Some(r),
                            format!("guard reaches non-boolean terminal {t}"),
                        );
                    }
                }
            } else if self.audit_node_index_ok(r) {
                let n = self.node_at(r);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        report
    }

    /// Structural audit of one diagram reachable from `root`, as run on
    /// every cross-arena [`Mtbdd::import`] when auditing is enabled:
    /// variable order, canonicity, and dangling references over the
    /// reachable sub-diagram only. Unlike the full [`Mtbdd::audit`] this
    /// skips the whole-arena table scans, so per-imported-root cost is
    /// O(reachable), not O(arena).
    pub fn audit_imported(&self, root: NodeRef) -> AuditReport {
        let mut report = AuditReport::default();
        self.audit_reachable(&[root], &mut report);
        report
    }

    /// Audits the `KREDUCE` postcondition for a reduced diagram: every
    /// root-to-terminal path of `f` takes at most `k` failed edges
    /// (Lemma 2), on top of the structural checks.
    pub fn audit_kreduced(&self, f: NodeRef, k: u32) -> AuditReport {
        let mut report = self.audit(&[f]);
        let mpf = self.max_path_failures(f);
        if mpf > k {
            report.push(
                AuditCheck::KreducePostcondition,
                Some(f),
                format!("max_path_failures = {mpf} exceeds budget k = {k}"),
            );
        }
        report
    }

    fn audit_node_index_ok(&self, r: NodeRef) -> bool {
        !r.is_terminal() && r.index() < self.total_nodes()
    }

    fn audit_terminal_index_ok(&self, r: NodeRef) -> bool {
        r.is_terminal() && r.index() < self.total_terms()
    }

    /// Table-consistency audit over the *private* arena (for an overlay
    /// manager the frozen base is immutable and was audited before it was
    /// frozen, so re-scanning it per worker would be pure overhead).
    /// A private node that duplicates a base node is still caught: the
    /// unique lookup resolves to the base handle, which differs from the
    /// private one.
    fn audit_tables(&self, report: &mut AuditReport) {
        let nodes = self.raw_nodes();
        if self.unique_table_len() != nodes.len() {
            report.push(
                AuditCheck::UniqueTable,
                None,
                format!(
                    "unique table has {} entries but arena has {} nodes",
                    self.unique_table_len(),
                    nodes.len()
                ),
            );
        }
        for (ix, node) in nodes.iter().enumerate() {
            let r = NodeRef::inner(self.base_nodes + ix);
            match self.unique_lookup_for_audit(node) {
                Some(mapped) if mapped == r => {}
                Some(mapped) => report.push(
                    AuditCheck::UniqueTable,
                    Some(r),
                    format!(
                        "two live NodeRefs for (var {}, lo {:?}, hi {:?}): {:?} and {:?}",
                        node.var, node.lo, node.hi, mapped, r
                    ),
                ),
                None => report.push(
                    AuditCheck::UniqueTable,
                    Some(r),
                    format!(
                        "arena node (var {}, lo {:?}, hi {:?}) missing from unique table",
                        node.var, node.lo, node.hi
                    ),
                ),
            }
        }
        let terms = self.raw_terms();
        let term_ids = self.term_table();
        if term_ids.len() != terms.len() {
            report.push(
                AuditCheck::TerminalDedup,
                None,
                format!(
                    "terminal table has {} entries but arena has {} terminals",
                    term_ids.len(),
                    terms.len()
                ),
            );
        }
        for (ix, term) in terms.iter().enumerate() {
            let r = NodeRef::terminal(self.base_terms + ix);
            match term_ids.get(term) {
                Some(&mapped) if mapped == r => {}
                Some(&mapped) => report.push(
                    AuditCheck::TerminalDedup,
                    Some(r),
                    format!("duplicate terminal {term}: mapped to {mapped:?} but stored at {r:?}"),
                ),
                None => report.push(
                    AuditCheck::TerminalDedup,
                    Some(r),
                    format!("terminal {term} missing from terminal table"),
                ),
            }
        }
    }

    fn audit_reachable(&self, roots: &[NodeRef], report: &mut AuditReport) {
        let mut seen = std::collections::HashSet::new();
        let mut stack: Vec<NodeRef> = roots.to_vec();
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            if r.is_terminal() {
                if !self.audit_terminal_index_ok(r) {
                    report.push(
                        AuditCheck::TerminalDedup,
                        Some(r),
                        format!(
                            "dangling terminal reference (index {} of {})",
                            r.index(),
                            self.total_terms()
                        ),
                    );
                }
                continue;
            }
            if !self.audit_node_index_ok(r) {
                report.push(
                    AuditCheck::UniqueTable,
                    Some(r),
                    format!(
                        "dangling node reference (index {} of {})",
                        r.index(),
                        self.total_nodes()
                    ),
                );
                continue;
            }
            report.nodes_checked += 1;
            let n = self.node_at(r);
            if n.var >= self.num_vars() {
                report.push(
                    AuditCheck::VariableOrder,
                    Some(r),
                    format!(
                        "tests unallocated variable {} (num_vars {})",
                        n.var,
                        self.num_vars()
                    ),
                );
            }
            if n.lo == n.hi {
                report.push(
                    AuditCheck::Canonicity,
                    Some(r),
                    format!("redundant test on var {}: lo == hi == {:?}", n.var, n.lo),
                );
            }
            for child in [n.lo, n.hi] {
                if !child.is_terminal() && self.audit_node_index_ok(child) {
                    let cv = self.node_at(child).var;
                    if cv <= n.var {
                        report.push(
                            AuditCheck::VariableOrder,
                            Some(r),
                            format!(
                                "edge to {child:?} does not increase the level: var {} -> var {cv}",
                                n.var
                            ),
                        );
                    }
                }
                stack.push(child);
            }
        }
    }

    /// Re-evaluates a deterministic sample of apply/apply1 cache entries
    /// under a handful of assignments, comparing the cached diagram
    /// against pointwise recombination of the operands.
    fn audit_cache_sample(&self, report: &mut AuditReport) {
        let step = (self.apply_cache.len() / FULL_AUDIT_CACHE_SAMPLES).max(1);
        for (i, (w0, w1, raw)) in self.apply_cache.iter().enumerate() {
            if i % step != 0 || report.cache_entries_checked >= FULL_AUDIT_CACHE_SAMPLES {
                break;
            }
            report.cache_entries_checked += 1;
            let (op, f, g) = crate::manager::unpack_apply_key(w0, w1);
            self.audit_check_apply_entry(op, f, g, NodeRef(raw), i as u64, report);
        }
        let step1 = (self.apply1_cache.len() / FULL_AUDIT_CACHE_SAMPLES).max(1);
        let mut checked1 = 0usize;
        for (i, (w0, w1, raw)) in self.apply1_cache.iter().enumerate() {
            if i % step1 != 0 || checked1 >= FULL_AUDIT_CACHE_SAMPLES {
                break;
            }
            checked1 += 1;
            let (op, f) = crate::manager::unpack_apply1_key(w0, w1);
            let r = NodeRef(raw);
            for assign in sample_assignments(i as u64, self.num_vars()) {
                let fa = self.eval(f, &assign);
                let ra = self.eval(r, &assign);
                let want = op.combine(fa);
                if ra != want {
                    report.push(
                        AuditCheck::ApplyCache,
                        Some(r),
                        format!(
                            "apply1 cache entry ({op:?}, {f:?}) -> {r:?} evaluates to {ra}, expected {want}"
                        ),
                    );
                    break;
                }
            }
        }
        report.cache_entries_checked += checked1;
    }

    fn audit_check_apply_entry(
        &self,
        op: Op,
        f: NodeRef,
        g: NodeRef,
        r: NodeRef,
        salt: u64,
        report: &mut AuditReport,
    ) {
        for assign in sample_assignments(salt, self.num_vars()) {
            let fa = self.eval(f, &assign);
            let ga = self.eval(g, &assign);
            let ra = self.eval(r, &assign);
            let want = op.combine(fa.clone(), ga.clone());
            if ra != want {
                report.push(
                    AuditCheck::ApplyCache,
                    Some(r),
                    format!(
                        "apply cache entry ({op:?}, {f:?}, {g:?}) -> {r:?} evaluates to {ra} \
                         under a sampled assignment, expected {fa} {op:?} {ga} = {want}"
                    ),
                );
                return;
            }
        }
    }

    /// Sampled apply-result validation, called from `apply` on cache hits
    /// and inserts when auditing is enabled. Every [`APPLY_SAMPLE_PERIOD`]th
    /// operation re-evaluates the entry it just touched; a mismatch there
    /// means the memo table is poisoned (e.g. a handle survived GC) and
    /// panics immediately.
    pub(crate) fn audit_apply_tick(&mut self, op: Op, f: NodeRef, g: NodeRef, r: NodeRef) {
        let ops = self.audit_ops_bump();
        if !ops.is_multiple_of(APPLY_SAMPLE_PERIOD) {
            return;
        }
        let mut report = AuditReport::default();
        self.audit_check_apply_entry(op, f, g, r, ops, &mut report);
        report.assert_ok("sampled apply-cache validation");
    }
}

/// A few deterministic assignments: all-alive, all-failed, and two
/// pseudo-random ones derived from `salt`.
fn sample_assignments(salt: u64, num_vars: u32) -> Vec<impl Fn(u32) -> bool> {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let _ = num_vars;
    let seeds = [
        u64::MAX,
        0,
        mix(salt.wrapping_add(1)),
        mix(salt.wrapping_add(2)),
    ];
    seeds
        .into_iter()
        .map(|word| move |v: u32| word >> (v % 64) & 1 == 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ratio, Term};

    #[test]
    fn clean_manager_audits_clean() {
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let g3 = m.nvar_guard(x3);
        let a = m.add(g1, g2);
        let b = m.mul(a, g3);
        let c = m.kreduce(b, 1);
        let report = m.audit(&[a, b, c]);
        assert!(
            report.ok(),
            "unexpected violations: {:?}",
            report.violations
        );
        assert!(report.nodes_checked > 0);
    }

    #[test]
    fn guard_audit_flags_non_boolean_terminals() {
        let mut m = Mtbdd::new();
        let x1 = m.fresh_var();
        let g = m.var_guard(x1);
        let five = m.constant(Ratio::new(5, 1));
        let f = m.mul(g, five); // 0 or 5: not a guard
        assert!(m.audit_guard(g).ok());
        let report = m.audit_guard(f);
        assert!(!report.ok());
        assert!(report
            .violations
            .iter()
            .all(|v| v.check == AuditCheck::GuardBoolean));
    }

    #[test]
    fn kreduce_audit_accepts_reduced_and_flags_unreduced() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let ng1 = m.nvar_guard(x1);
        let ng2 = m.nvar_guard(x2);
        let both_failed = m.mul(ng1, ng2); // needs 2 lo edges
        let reduced = m.kreduce(both_failed, 1);
        assert!(m.audit_kreduced(reduced, 1).ok());
        let report = m.audit_kreduced(both_failed, 1);
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == AuditCheck::KreducePostcondition));
    }

    #[test]
    fn audit_survives_gc() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let f = m.add(g1, g2);
        for i in 0..20 {
            let s = m.scale(g2, Term::int(i));
            let _ = m.add(s, g1); // garbage
        }
        let remap = m.collect(&[f]);
        let f = remap.get(f);
        let report = m.audit(&[f]);
        assert!(
            report.ok(),
            "unexpected violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn audit_checks_apply_cache_entries() {
        let mut m = Mtbdd::new();
        let vars: Vec<_> = (0..6).map(|_| m.fresh_var()).collect();
        let mut f = m.zero();
        for (i, &v) in vars.iter().enumerate() {
            let g = m.var_guard(v);
            let s = m.scale(g, Term::int(i as i64 + 1));
            f = m.add(f, s);
        }
        let report = m.audit(&[f]);
        assert!(report.ok());
        assert!(report.cache_entries_checked > 0);
    }

    #[test]
    fn report_formats_violations() {
        let v = AuditViolation {
            check: AuditCheck::Canonicity,
            node: Some(NodeRef(3)),
            message: "broken".into(),
        };
        let text = v.to_string();
        assert!(text.contains("canonicity") && text.contains("broken"));
    }
}
