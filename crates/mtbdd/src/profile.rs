//! Read-only engine introspection for performance attribution.
//!
//! The ROADMAP's MTBDD-overhaul work (variable reordering, sharding
//! heuristics) needs to know *where* an arena's nodes and the apply
//! kernels' time actually go. This module answers three questions
//! without perturbing the engine:
//!
//! * **Where do the nodes live?** [`Mtbdd::level_profile`] walks the
//!   sub-diagrams reachable from a root set and histograms live inner
//!   nodes per variable level — the raw input to any variable-ordering
//!   decision. The walk is a read-only DFS over existing handles; it
//!   allocates nothing in the arena and therefore cannot change any
//!   verdict.
//! * **How do the operation caches behave?** [`Mtbdd::cache_profiles`]
//!   reports, for the binary apply cache and the fused `op∘KREDUCE`
//!   cache, the current size, load factor, cumulative hit/miss/eviction
//!   counters, and an *estimated* probe-length distribution obtained by
//!   re-hashing the resident keys into a simulated open-addressed table
//!   of the same occupancy (see [`ProbeStats`]). The estimate is
//!   deterministic and read-only; it models clustering under linear
//!   probing, not the exact std `HashMap` layout.
//! * **How deep do the kernels recurse?** Max-recursion-depth tracking
//!   for `apply`, the fused kernel, and `KREDUCE`, gated by the
//!   `YU_ENGINE_PROFILE` environment variable (or the programmatic
//!   [`set_engine_profile`] override) and latched per-manager at
//!   construction — when off, the hot paths pay a single predictable
//!   branch on the cache-miss path and nothing at all on hits.
//!
//! Everything here is observer-only: profiling on or off, the same
//! inputs produce bit-identical diagrams, verdicts, and statistics
//! (asserted by `tests/telemetry_differential.rs`).

use crate::hasher::FxHasher;
use crate::manager::Mtbdd;
use crate::node::{NodeRef, Var};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Programmatic override: 0 = follow the environment, 1 = forced off,
/// 2 = forced on.
static PROFILE_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static PROFILE_ENV: OnceLock<bool> = OnceLock::new();

/// Whether engine profiling (recursion-depth tracking) is requested.
///
/// Reads `YU_ENGINE_PROFILE` once (any non-empty value other than `0`
/// enables it) unless [`set_engine_profile`] has overridden it. Each
/// [`Mtbdd`] latches this at construction, mirroring the audit gate.
pub fn engine_profile_enabled() -> bool {
    match PROFILE_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *PROFILE_ENV.get_or_init(|| {
            std::env::var("YU_ENGINE_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
        }),
    }
}

/// Forces engine profiling on or off for managers constructed after the
/// call, overriding `YU_ENGINE_PROFILE`. Exists so in-process
/// differential tests and `yu profile` can flip the gate without
/// touching the environment.
pub fn set_engine_profile(on: bool) {
    PROFILE_OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Live inner nodes at one variable level (see [`Mtbdd::level_profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct LevelCount {
    /// The variable tested at this level.
    pub var: Var,
    /// Inner nodes testing `var` reachable from the root set.
    pub nodes: usize,
}

/// A live-node histogram per variable level, from [`Mtbdd::level_profile`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct LevelProfile {
    /// Non-empty levels in variable order (top of the diagram first).
    pub levels: Vec<LevelCount>,
    /// Total inner nodes reachable from the roots (equals the sum of
    /// `levels[..].nodes`; proptested against [`Mtbdd::node_count`]).
    pub inner_nodes: usize,
    /// Distinct terminals reachable from the roots.
    pub terminals: usize,
}

impl LevelProfile {
    /// The level with the most live nodes, if any.
    pub fn widest(&self) -> Option<LevelCount> {
        self.levels.iter().copied().max_by_key(|l| l.nodes)
    }
}

/// Estimated probe-length distribution of an operation cache.
///
/// The std `HashMap` does not expose its bucket layout, so the resident
/// keys are re-hashed into a simulated open-addressed table with linear
/// probing at the same power-of-two capacity the real table would use.
/// The probe length of a key is the number of occupied slots inspected
/// before an empty one is found (0 = direct hit). This models the
/// clustering behavior of the hash function on the *actual* resident
/// keys — the quantity that predicts lookup cost — without touching the
/// real table.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct ProbeStats {
    /// Mean probe length over all resident keys.
    pub mean: f64,
    /// Worst probe length observed.
    pub max: usize,
    /// Fraction of keys placed with zero displacement.
    pub direct_fraction: f64,
}

/// A profile of one operation cache, from [`Mtbdd::cache_profiles`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CacheProfile {
    /// Which cache: `"apply"` or `"fused"`.
    pub name: &'static str,
    /// Entries resident right now.
    pub len: usize,
    /// Allocated capacity of the real table.
    pub capacity: usize,
    /// `len / capacity` (0 for an unallocated table).
    pub load_factor: f64,
    /// Cumulative lookup hits (survives GC).
    pub hits: u64,
    /// Cumulative lookup misses (survives GC).
    pub misses: u64,
    /// Cumulative entries dropped by [`Mtbdd::clear_caches`] and GC.
    /// The caches never evict individually, so this counts wholesale
    /// invalidations — the cost a future bounded cache would avoid.
    pub evictions: u64,
    /// Estimated probe-length distribution of the resident keys.
    pub probe: ProbeStats,
}

/// Maximum recursion depths of the memoized kernels, tracked when
/// engine profiling is enabled (see [`engine_profile_enabled`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct EngineProfile {
    /// Whether this manager was constructed with depth tracking on.
    /// When `false` the depth fields are all zero.
    pub enabled: bool,
    /// Deepest memoized `apply` recursion (cache-miss frames only).
    pub apply_max_depth: u32,
    /// Deepest fused `op∘KREDUCE` recursion.
    pub fused_max_depth: u32,
    /// Deepest `KREDUCE` recursion.
    pub kreduce_max_depth: u32,
}

/// Simulates linear probing over the given key hashes at hashbrown-like
/// occupancy (capacity = smallest power of two holding `len` at 7/8
/// load) and returns the displacement distribution.
fn probe_stats_of_hashes(hashes: &[u64]) -> ProbeStats {
    if hashes.is_empty() {
        return ProbeStats::default();
    }
    let cap = (hashes.len() * 8 / 7 + 1).next_power_of_two().max(8);
    let mask = cap - 1;
    let mut occupied = vec![false; cap];
    let (mut total, mut max, mut direct) = (0usize, 0usize, 0usize);
    for &h in hashes {
        let mut slot = h as usize & mask;
        let mut probes = 0usize;
        while occupied[slot] {
            probes += 1;
            slot = (slot + 1) & mask;
        }
        occupied[slot] = true;
        total += probes;
        max = max.max(probes);
        if probes == 0 {
            direct += 1;
        }
    }
    ProbeStats {
        mean: total as f64 / hashes.len() as f64,
        max,
        direct_fraction: direct as f64 / hashes.len() as f64,
    }
}

fn fx_hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

impl Mtbdd {
    /// Histograms the live inner nodes reachable from `roots` per
    /// variable level. Read-only: allocates nothing in the arena.
    ///
    /// The sum of the per-level counts equals the size of the union of
    /// the root sub-diagrams (node-for-node what [`Mtbdd::node_count`]
    /// reports for a single root), which the proptest suite asserts.
    pub fn level_profile(&self, roots: &[NodeRef]) -> LevelProfile {
        let mut seen = std::collections::HashSet::new();
        let mut per_var: std::collections::BTreeMap<Var, usize> = std::collections::BTreeMap::new();
        let mut terminals = std::collections::HashSet::new();
        let mut stack: Vec<NodeRef> = roots.to_vec();
        let mut inner_nodes = 0usize;
        while let Some(r) = stack.pop() {
            if r.is_terminal() {
                terminals.insert(r);
                continue;
            }
            if !seen.insert(r) {
                continue;
            }
            inner_nodes += 1;
            let n = self.node_at(r);
            *per_var.entry(n.var).or_insert(0) += 1;
            stack.push(n.lo);
            stack.push(n.hi);
        }
        LevelProfile {
            levels: per_var
                .into_iter()
                .map(|(var, nodes)| LevelCount { var, nodes })
                .collect(),
            inner_nodes,
            terminals: terminals.len(),
        }
    }

    /// Profiles the two hot operation caches (binary apply and fused
    /// `op∘KREDUCE`): sizes, cumulative hit/miss/eviction counters, and
    /// an estimated probe-length distribution (see [`ProbeStats`]).
    /// Read-only and deterministic.
    pub fn cache_profiles(&self) -> Vec<CacheProfile> {
        let apply_hashes: Vec<u64> = self.apply_cache_ref().keys().map(fx_hash_of).collect();
        let fused_hashes: Vec<u64> = self.fused_cache_ref().keys().map(fx_hash_of).collect();
        let load = |len: usize, cap: usize| {
            if cap == 0 {
                0.0
            } else {
                len as f64 / cap as f64
            }
        };
        vec![
            CacheProfile {
                name: "apply",
                len: self.apply_cache_ref().len(),
                capacity: self.apply_cache_ref().capacity(),
                load_factor: load(
                    self.apply_cache_ref().len(),
                    self.apply_cache_ref().capacity(),
                ),
                hits: self.apply_cache_hits,
                misses: self.apply_cache_misses,
                evictions: self.apply_cache_evicted,
                probe: probe_stats_of_hashes(&apply_hashes),
            },
            CacheProfile {
                name: "fused",
                len: self.fused_cache_ref().len(),
                capacity: self.fused_cache_ref().capacity(),
                load_factor: load(
                    self.fused_cache_ref().len(),
                    self.fused_cache_ref().capacity(),
                ),
                hits: self.fused_cache_hits,
                misses: self.fused_cache_misses,
                evictions: self.fused_cache_evicted,
                probe: probe_stats_of_hashes(&fused_hashes),
            },
        ]
    }

    /// The kernel recursion-depth maxima recorded so far. All-zero
    /// unless the manager was constructed with engine profiling on
    /// (see [`engine_profile_enabled`]); the maxima survive GC.
    pub fn engine_profile(&self) -> EngineProfile {
        EngineProfile {
            enabled: self.profile_on(),
            apply_max_depth: self.prof_apply_depth_max,
            fused_max_depth: self.prof_fused_depth_max,
            kreduce_max_depth: self.prof_kreduce_depth_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ratio, Term};
    use std::sync::Mutex;

    /// Serializes the tests that flip the process-global profile gate.
    static GATE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn level_profile_counts_union_of_roots() {
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let g3 = m.var_guard(x3);
        let a = m.add(g1, g2); // tests x1 and x2
        let b = m.add(g2, g3); // tests x2 and x3
        let p = m.level_profile(&[a, b]);
        assert_eq!(p.inner_nodes, p.levels.iter().map(|l| l.nodes).sum());
        let at = |v: Var| p.levels.iter().find(|l| l.var == v).map(|l| l.nodes);
        assert_eq!(at(x1), Some(1));
        assert!(
            at(x2).unwrap() >= 2,
            "both roots test x2 with distinct children"
        );
        // Levels come out in variable order.
        let vars: Vec<Var> = p.levels.iter().map(|l| l.var).collect();
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        assert_eq!(vars, sorted);
    }

    #[test]
    fn level_profile_single_root_matches_node_count() {
        let mut m = Mtbdd::new();
        let vars: Vec<_> = (0..5).map(|_| m.fresh_var()).collect();
        let mut f = m.zero();
        for (i, &v) in vars.iter().enumerate() {
            let g = m.var_guard(v);
            let s = m.scale(g, Term::Num(Ratio::new(1, i as i128 + 1)));
            f = m.add(f, s);
        }
        let p = m.level_profile(&[f]);
        assert_eq!(p.inner_nodes, m.node_count(f));
        assert!(p.terminals > 0);
        assert_eq!(
            p.widest().unwrap().nodes,
            p.levels.iter().map(|l| l.nodes).max().unwrap()
        );
    }

    #[test]
    fn level_profile_of_terminal_is_empty() {
        let mut m = Mtbdd::new();
        let c = m.constant(Ratio::int(7));
        let p = m.level_profile(&[c]);
        assert_eq!(p.inner_nodes, 0);
        assert!(p.levels.is_empty());
        assert_eq!(p.terminals, 1);
        assert_eq!(m.level_profile(&[]), LevelProfile::default());
    }

    #[test]
    fn cache_profiles_report_occupancy_and_evictions() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let s = m.add(g1, g2);
        let _ = m.add_kreduce(s, g1, 1);
        let profiles = m.cache_profiles();
        assert_eq!(profiles.len(), 2);
        let apply = &profiles[0];
        assert_eq!(apply.name, "apply");
        assert!(apply.len > 0 && apply.capacity >= apply.len);
        assert!(apply.load_factor > 0.0 && apply.load_factor <= 1.0);
        assert!(apply.misses > 0);
        assert_eq!(apply.evictions, 0);
        assert!(apply.probe.mean >= 0.0 && apply.probe.direct_fraction > 0.0);
        let fused = &profiles[1];
        assert_eq!(fused.name, "fused");
        assert!(fused.len > 0);
        // Dropping the caches books every resident entry as an eviction.
        let (apply_len, fused_len) = (apply.len as u64, fused.len as u64);
        m.clear_caches();
        let after = m.cache_profiles();
        assert_eq!(after[0].len, 0);
        assert_eq!(after[0].evictions, apply_len);
        assert_eq!(after[1].evictions, fused_len);
        // Cumulative counters survive the clear.
        assert!(after[0].misses > 0);
    }

    #[test]
    fn probe_simulation_is_deterministic_and_bounded() {
        let hashes: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let a = probe_stats_of_hashes(&hashes);
        let b = probe_stats_of_hashes(&hashes);
        assert_eq!(a, b, "probe estimate must be deterministic");
        assert!(a.direct_fraction > 0.5, "good hashes mostly place directly");
        assert!(a.mean <= a.max as f64);
        assert_eq!(probe_stats_of_hashes(&[]), ProbeStats::default());
    }

    #[test]
    fn depth_tracking_follows_the_gate() {
        let _guard = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Forced off: depths stay zero. On: they move, and results are
        // identical either way.
        set_engine_profile(false);
        let build = |m: &mut Mtbdd| {
            let vars: Vec<_> = (0..6).map(|_| m.fresh_var()).collect();
            let mut f = m.zero();
            for (i, &v) in vars.iter().enumerate() {
                let g = m.var_guard(v);
                let s = m.scale(g, Term::int(i as i64 + 1));
                f = m.add(f, s);
            }
            let r = m.kreduce(f, 2);
            let fused = m.add_kreduce(f, r, 2);
            (f, r, fused)
        };
        let mut off = Mtbdd::new();
        let off_out = build(&mut off);
        let p = off.engine_profile();
        assert!(!p.enabled);
        assert_eq!(
            (p.apply_max_depth, p.fused_max_depth, p.kreduce_max_depth),
            (0, 0, 0)
        );

        set_engine_profile(true);
        let mut on = Mtbdd::new();
        let on_out = build(&mut on);
        let p = on.engine_profile();
        assert!(p.enabled);
        assert!(p.apply_max_depth > 0, "apply recursion must be observed");
        assert!(
            p.kreduce_max_depth > 0,
            "kreduce recursion must be observed"
        );
        assert!(p.fused_max_depth > 0, "fused recursion must be observed");
        set_engine_profile(false);

        // Identical construction sequence => identical handles, so the
        // profiled run is bit-identical to the plain one.
        assert_eq!(off_out, on_out);
        assert_eq!(off.stats(), on.stats());
    }

    #[test]
    fn depth_maxima_survive_gc() {
        let _guard = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_engine_profile(true);
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let g3 = m.var_guard(x3);
        let s0 = m.add(g1, g2);
        let s = m.add(s0, g3);
        let before = m.engine_profile();
        assert!(before.apply_max_depth > 0);
        let remap = m.collect(&[s]);
        let _ = remap.get(s);
        let after = m.engine_profile();
        set_engine_profile(false);
        assert_eq!(after.apply_max_depth, before.apply_max_depth);
        // GC dropped the resident cache entries: booked as evictions.
        assert!(m.cache_profiles()[0].evictions > 0);
    }
}
