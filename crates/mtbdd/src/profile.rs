//! Read-only engine introspection for performance attribution.
//!
//! The ROADMAP's MTBDD-overhaul work (variable reordering, sharding
//! heuristics) needs to know *where* an arena's nodes and the apply
//! kernels' time actually go. This module answers three questions
//! without perturbing the engine:
//!
//! * **Where do the nodes live?** [`Mtbdd::level_profile`] walks the
//!   sub-diagrams reachable from a root set and histograms live inner
//!   nodes per variable level — the raw input to any variable-ordering
//!   decision. The walk is a read-only DFS over existing handles; it
//!   allocates nothing in the arena and therefore cannot change any
//!   verdict.
//! * **How do the operation caches behave?** [`Mtbdd::cache_profiles`]
//!   reports, for each direct-mapped operation cache (`apply`, `fused`,
//!   `apply1`, `ite`, `restrict`, `kreduce`) and for the open-addressed
//!   unique table, the current size, load factor, and cumulative
//!   hit/miss/eviction counters. The unique table additionally exposes
//!   its *measured* linear-probe distribution (see [`ProbeStats`]) —
//!   real counters from the hot path, not a simulation; direct-mapped
//!   caches probe exactly one slot by construction.
//! * **How deep do the kernels recurse?** Max-recursion-depth tracking
//!   for `apply`, the fused kernel, and `KREDUCE`, gated by the
//!   `YU_ENGINE_PROFILE` environment variable (or the programmatic
//!   [`set_engine_profile`] override) and latched per-manager at
//!   construction — when off, the hot paths pay a single predictable
//!   branch on the cache-miss path and nothing at all on hits.
//!
//! Everything here is observer-only: profiling on or off, the same
//! inputs produce bit-identical diagrams, verdicts, and statistics
//! (asserted by `tests/telemetry_differential.rs`).

use crate::manager::Mtbdd;
use crate::node::{NodeRef, Var};
use crate::table::DirectCache;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Programmatic override: 0 = follow the environment, 1 = forced off,
/// 2 = forced on.
static PROFILE_OVERRIDE: AtomicU8 = AtomicU8::new(0);
static PROFILE_ENV: OnceLock<bool> = OnceLock::new();

/// Whether engine profiling (recursion-depth tracking) is requested.
///
/// Reads `YU_ENGINE_PROFILE` once (any non-empty value other than `0`
/// enables it) unless [`set_engine_profile`] has overridden it. Each
/// [`Mtbdd`] latches this at construction, mirroring the audit gate.
pub fn engine_profile_enabled() -> bool {
    match PROFILE_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *PROFILE_ENV.get_or_init(|| {
            std::env::var("YU_ENGINE_PROFILE").is_ok_and(|v| !v.is_empty() && v != "0")
        }),
    }
}

/// Forces engine profiling on or off for managers constructed after the
/// call, overriding `YU_ENGINE_PROFILE`. Exists so in-process
/// differential tests and `yu profile` can flip the gate without
/// touching the environment.
pub fn set_engine_profile(on: bool) {
    PROFILE_OVERRIDE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Live inner nodes at one variable level (see [`Mtbdd::level_profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct LevelCount {
    /// The variable tested at this level.
    pub var: Var,
    /// Inner nodes testing `var` reachable from the root set.
    pub nodes: usize,
}

/// A live-node histogram per variable level, from [`Mtbdd::level_profile`].
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct LevelProfile {
    /// Non-empty levels in variable order (top of the diagram first).
    pub levels: Vec<LevelCount>,
    /// Total inner nodes reachable from the roots (equals the sum of
    /// `levels[..].nodes`; proptested against [`Mtbdd::node_count`]).
    pub inner_nodes: usize,
    /// Distinct terminals reachable from the roots.
    pub terminals: usize,
}

impl LevelProfile {
    /// The level with the most live nodes, if any.
    pub fn widest(&self) -> Option<LevelCount> {
        self.levels.iter().copied().max_by_key(|l| l.nodes)
    }
}

/// Probe-length distribution of a table.
///
/// For the open-addressed unique table these are *measured* counters
/// from the hot path: the probe length of a lookup is the number of
/// occupied slots inspected beyond the home slot (0 = direct hit).
/// Direct-mapped operation caches inspect exactly one slot by
/// construction, so they report a mean of 0 and a `direct_fraction`
/// of 1 whenever any entries are resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct ProbeStats {
    /// Mean probe length over all lookups (keys for direct caches).
    pub mean: f64,
    /// Worst probe length observed.
    pub max: usize,
    /// Fraction of lookups resolved with zero displacement.
    pub direct_fraction: f64,
}

/// A profile of one operation cache, from [`Mtbdd::cache_profiles`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CacheProfile {
    /// Which table: `"apply"`, `"fused"`, `"apply1"`, `"ite"`,
    /// `"restrict"`, `"kreduce"`, or `"unique"`.
    pub name: &'static str,
    /// Entries resident right now.
    pub len: usize,
    /// Allocated capacity of the real table.
    pub capacity: usize,
    /// `len / capacity` (0 for an unallocated table).
    pub load_factor: f64,
    /// Cumulative lookup hits (survives GC).
    pub hits: u64,
    /// Cumulative lookup misses (survives GC).
    pub misses: u64,
    /// Cumulative entries dropped: per-slot overwrites in the
    /// direct-mapped caches plus wholesale invalidations by
    /// [`Mtbdd::clear_caches`] and GC. For the unique table this is the
    /// cumulative node count reclaimed by GC.
    pub evictions: u64,
    /// Probe-length distribution (measured for the unique table;
    /// trivially direct for the direct-mapped caches).
    pub probe: ProbeStats,
}

/// Maximum recursion depths of the memoized kernels, tracked when
/// engine profiling is enabled (see [`engine_profile_enabled`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct EngineProfile {
    /// Whether this manager was constructed with depth tracking on.
    /// When `false` the depth fields are all zero.
    pub enabled: bool,
    /// Deepest memoized `apply` recursion (cache-miss frames only).
    pub apply_max_depth: u32,
    /// Deepest fused `op∘KREDUCE` recursion.
    pub fused_max_depth: u32,
    /// Deepest `KREDUCE` recursion.
    pub kreduce_max_depth: u32,
}

/// Profile of a direct-mapped cache: one slot per key, so the probe
/// distribution is degenerate (mean 0, everything direct).
fn direct_profile(name: &'static str, c: &DirectCache) -> CacheProfile {
    let (len, cap) = (c.len(), c.capacity());
    CacheProfile {
        name,
        len,
        capacity: cap,
        load_factor: if cap == 0 {
            0.0
        } else {
            len as f64 / cap as f64
        },
        hits: c.hits(),
        misses: c.misses(),
        evictions: c.evictions(),
        probe: ProbeStats {
            mean: 0.0,
            max: 0,
            direct_fraction: if len > 0 { 1.0 } else { 0.0 },
        },
    }
}

impl Mtbdd {
    /// Histograms the live inner nodes reachable from `roots` per
    /// variable level. Read-only: allocates nothing in the arena.
    ///
    /// The sum of the per-level counts equals the size of the union of
    /// the root sub-diagrams (node-for-node what [`Mtbdd::node_count`]
    /// reports for a single root), which the proptest suite asserts.
    pub fn level_profile(&self, roots: &[NodeRef]) -> LevelProfile {
        let mut seen = std::collections::HashSet::new();
        let mut per_var: std::collections::BTreeMap<Var, usize> = std::collections::BTreeMap::new();
        let mut terminals = std::collections::HashSet::new();
        let mut stack: Vec<NodeRef> = roots.to_vec();
        let mut inner_nodes = 0usize;
        while let Some(r) = stack.pop() {
            if r.is_terminal() {
                terminals.insert(r);
                continue;
            }
            if !seen.insert(r) {
                continue;
            }
            inner_nodes += 1;
            let n = self.node_at(r);
            *per_var.entry(n.var).or_insert(0) += 1;
            stack.push(n.lo);
            stack.push(n.hi);
        }
        LevelProfile {
            levels: per_var
                .into_iter()
                .map(|(var, nodes)| LevelCount { var, nodes })
                .collect(),
            inner_nodes,
            terminals: terminals.len(),
        }
    }

    /// Profiles the seven direct-mapped operation caches and the
    /// open-addressed unique table: sizes, cumulative
    /// hit/miss/eviction counters, and the probe-length distribution
    /// (measured on the hot path for the unique table, degenerate for
    /// the direct-mapped caches). Read-only and deterministic. The
    /// first two entries are always `"apply"` and `"fused"`.
    pub fn cache_profiles(&self) -> Vec<CacheProfile> {
        let ups = self.unique_probe_stats();
        vec![
            direct_profile("apply", &self.apply_cache),
            direct_profile("fused", &self.fused_cache),
            direct_profile("apply1", &self.apply1_cache),
            direct_profile("ite", &self.ite_cache),
            direct_profile("restrict", &self.restrict_cache),
            direct_profile("kreduce", &self.kreduce_cache),
            direct_profile("alive", &self.alive_cache),
            CacheProfile {
                name: "unique",
                len: self.unique_table_len(),
                capacity: self.unique.capacity(),
                load_factor: self.unique_table_load_factor(),
                hits: ups.hits,
                misses: ups.lookups - ups.hits,
                evictions: self.gc_reclaimed,
                probe: ProbeStats {
                    mean: ups.mean(),
                    max: ups.max_steps as usize,
                    direct_fraction: if ups.lookups == 0 {
                        0.0
                    } else {
                        ups.direct as f64 / ups.lookups as f64
                    },
                },
            },
        ]
    }

    /// The kernel recursion-depth maxima recorded so far. All-zero
    /// unless the manager was constructed with engine profiling on
    /// (see [`engine_profile_enabled`]); the maxima survive GC.
    pub fn engine_profile(&self) -> EngineProfile {
        EngineProfile {
            enabled: self.profile_on(),
            apply_max_depth: self.prof_apply_depth_max,
            fused_max_depth: self.prof_fused_depth_max,
            kreduce_max_depth: self.prof_kreduce_depth_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ratio, Term};
    use std::sync::Mutex;

    /// Serializes the tests that flip the process-global profile gate.
    static GATE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn level_profile_counts_union_of_roots() {
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let g3 = m.var_guard(x3);
        let a = m.add(g1, g2); // tests x1 and x2
        let b = m.add(g2, g3); // tests x2 and x3
        let p = m.level_profile(&[a, b]);
        assert_eq!(p.inner_nodes, p.levels.iter().map(|l| l.nodes).sum());
        let at = |v: Var| p.levels.iter().find(|l| l.var == v).map(|l| l.nodes);
        assert_eq!(at(x1), Some(1));
        assert!(
            at(x2).unwrap() >= 2,
            "both roots test x2 with distinct children"
        );
        // Levels come out in variable order.
        let vars: Vec<Var> = p.levels.iter().map(|l| l.var).collect();
        let mut sorted = vars.clone();
        sorted.sort_unstable();
        assert_eq!(vars, sorted);
    }

    #[test]
    fn level_profile_single_root_matches_node_count() {
        let mut m = Mtbdd::new();
        let vars: Vec<_> = (0..5).map(|_| m.fresh_var()).collect();
        let mut f = m.zero();
        for (i, &v) in vars.iter().enumerate() {
            let g = m.var_guard(v);
            let s = m.scale(g, Term::Num(Ratio::new(1, i as i128 + 1)));
            f = m.add(f, s);
        }
        let p = m.level_profile(&[f]);
        assert_eq!(p.inner_nodes, m.node_count(f));
        assert!(p.terminals > 0);
        assert_eq!(
            p.widest().unwrap().nodes,
            p.levels.iter().map(|l| l.nodes).max().unwrap()
        );
    }

    #[test]
    fn level_profile_of_terminal_is_empty() {
        let mut m = Mtbdd::new();
        let c = m.constant(Ratio::int(7));
        let p = m.level_profile(&[c]);
        assert_eq!(p.inner_nodes, 0);
        assert!(p.levels.is_empty());
        assert_eq!(p.terminals, 1);
        assert_eq!(m.level_profile(&[]), LevelProfile::default());
    }

    #[test]
    fn cache_profiles_report_occupancy_and_evictions() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let s = m.add(g1, g2);
        let _ = m.add_kreduce(s, g1, 1);
        let profiles = m.cache_profiles();
        assert_eq!(profiles.len(), 8);
        let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            ["apply", "fused", "apply1", "ite", "restrict", "kreduce", "alive", "unique"]
        );
        let apply = &profiles[0];
        assert_eq!(apply.name, "apply");
        assert!(apply.len > 0 && apply.capacity >= apply.len);
        assert!(apply.load_factor > 0.0 && apply.load_factor <= 1.0);
        assert!(apply.misses > 0);
        assert!(apply.probe.mean >= 0.0 && apply.probe.direct_fraction > 0.0);
        let fused = &profiles[1];
        assert_eq!(fused.name, "fused");
        assert!(fused.len > 0);
        let _ = m.var_guard(x1); // re-create an existing node: a unique-table hit
        let profiles = m.cache_profiles();
        let unique = &profiles[7];
        assert!(unique.len > 0, "arena nodes live in the unique table");
        assert!(unique.hits > 0, "hash-consing must have deduped something");
        assert!(unique.probe.direct_fraction > 0.0);
        // Dropping the caches books every resident entry as an eviction.
        let (apply_before, fused_before) = (apply.evictions, fused.evictions);
        let (apply_len, fused_len) = (apply.len as u64, fused.len as u64);
        m.clear_caches();
        let after = m.cache_profiles();
        assert_eq!(after[0].len, 0);
        assert_eq!(after[0].evictions, apply_before + apply_len);
        assert_eq!(after[1].evictions, fused_before + fused_len);
        // Cumulative counters survive the clear.
        assert!(after[0].misses > 0);
    }

    #[test]
    fn direct_caches_probe_exactly_one_slot() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let _ = m.add(g1, g2);
        for p in &m.cache_profiles()[..7] {
            assert_eq!(p.probe.mean, 0.0, "{} is direct-mapped", p.name);
            assert_eq!(p.probe.max, 0);
            if p.len > 0 {
                assert_eq!(p.probe.direct_fraction, 1.0);
            }
        }
    }

    #[test]
    fn depth_tracking_follows_the_gate() {
        let _guard = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Forced off: depths stay zero. On: they move, and results are
        // identical either way.
        set_engine_profile(false);
        let build = |m: &mut Mtbdd| {
            let vars: Vec<_> = (0..6).map(|_| m.fresh_var()).collect();
            let mut f = m.zero();
            for (i, &v) in vars.iter().enumerate() {
                let g = m.var_guard(v);
                let s = m.scale(g, Term::int(i as i64 + 1));
                f = m.add(f, s);
            }
            let r = m.kreduce(f, 2);
            let fused = m.add_kreduce(f, r, 2);
            (f, r, fused)
        };
        let mut off = Mtbdd::new();
        let off_out = build(&mut off);
        let p = off.engine_profile();
        assert!(!p.enabled);
        assert_eq!(
            (p.apply_max_depth, p.fused_max_depth, p.kreduce_max_depth),
            (0, 0, 0)
        );

        set_engine_profile(true);
        let mut on = Mtbdd::new();
        let on_out = build(&mut on);
        let p = on.engine_profile();
        assert!(p.enabled);
        assert!(p.apply_max_depth > 0, "apply recursion must be observed");
        assert!(
            p.kreduce_max_depth > 0,
            "kreduce recursion must be observed"
        );
        assert!(p.fused_max_depth > 0, "fused recursion must be observed");
        set_engine_profile(false);

        // Identical construction sequence => identical handles, so the
        // profiled run is bit-identical to the plain one.
        assert_eq!(off_out, on_out);
        assert_eq!(off.stats(), on.stats());
    }

    #[test]
    fn depth_maxima_survive_gc() {
        let _guard = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_engine_profile(true);
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let g3 = m.var_guard(x3);
        let s0 = m.add(g1, g2);
        let s = m.add(s0, g3);
        let before = m.engine_profile();
        assert!(before.apply_max_depth > 0);
        let remap = m.collect(&[s]);
        let _ = remap.get(s);
        let after = m.engine_profile();
        set_engine_profile(false);
        assert_eq!(after.apply_max_depth, before.apply_max_depth);
        // GC dropped the resident cache entries: booked as evictions.
        assert!(m.cache_profiles()[0].evictions > 0);
    }
}
