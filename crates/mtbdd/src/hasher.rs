//! A fast, non-cryptographic hasher for the hot hash maps of the MTBDD
//! manager (unique table, operation caches).
//!
//! The manager performs millions of small-key lookups per verification run;
//! SipHash's per-call overhead dominates with the default hasher. This is
//! the well-known Fx (Firefox/rustc) multiply-xor scheme, which is more than
//! adequate for in-process tables keyed by small integers.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` alias using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher (the rustc/Firefox "Fx" hash).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

/// Hashes one pre-packed 64-bit key word with the Fx mixing step.
///
/// Used by the flat-arena unique table and the direct-mapped operation
/// caches (`table.rs`), whose keys are packed into machine words up
/// front — hashing is then two multiplies instead of a `Hash`-trait
/// walk over a boxed tuple.
#[inline]
pub fn fx_hash_word(w0: u64) -> u64 {
    (w0.rotate_left(5)).wrapping_mul(SEED)
}

/// Hashes two pre-packed 64-bit key words with the Fx mixing sequence
/// (identical to feeding both words through [`FxHasher`]).
#[inline]
pub fn fx_hash_words(w0: u64, w1: u64) -> u64 {
    let h = (w0.rotate_left(5)).wrapping_mul(SEED);
    (h.rotate_left(5) ^ w1).wrapping_mul(SEED)
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let mut h1 = FxHasher::default();
        h1.write_u64(1);
        let mut h2 = FxHasher::default();
        h2.write_u64(2);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn usable_as_map() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert((i, i + 1), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(42, 43)], 42);
    }
}
