//! Cross-arena structural import of MTBDDs.
//!
//! The sharded parallel execution engine (yu-core) gives every worker its
//! own private [`Mtbdd`] arena; when a worker finishes, its per-link load
//! diagrams must move into the main arena. [`Mtbdd::import`] performs that
//! move: a memoized node-by-node copy that re-canonicalizes every copied
//! node through the target's unique table, so
//!
//! * the imported diagram denotes exactly the same pseudo-boolean function
//!   (the copy is purely structural and MTBDDs with a fixed variable order
//!   are canonical);
//! * structurally equal diagrams — whether imported from the same arena,
//!   from *different* worker arenas, or built natively in the target —
//!   end up pointer-equal, which keeps the link-local flow-equivalence
//!   test of §5.3 a O(1) handle comparison across worker boundaries.
//!
//! The per-source-arena [`ImportMemo`] makes repeated imports (one per
//! load point of every flow a worker executed) cost O(new nodes), not
//! O(diagram) each: shared sub-diagrams are translated once.
//!
//! With the frozen-arena overlay path ([`Mtbdd::with_base`]) workers
//! share the main arena's handles directly and no import is needed;
//! this walk remains for moving diagrams between genuinely independent
//! arenas (cross-instance serving, tests, tooling).

use crate::hasher::FxHashMap;
use crate::manager::Mtbdd;
use crate::node::NodeRef;

/// Memo table translating [`NodeRef`]s of one *source* arena into the
/// target arena of the [`Mtbdd::import`] calls it is threaded through.
///
/// A memo is only meaningful for one (source, target) arena pair; using
/// it with any other pair silently translates to wrong nodes. Keep one
/// memo per worker arena and drop it with the arena.
#[derive(Default)]
pub struct ImportMemo {
    map: FxHashMap<NodeRef, NodeRef>,
    hits: u64,
    misses: u64,
}

impl ImportMemo {
    /// An empty memo (no translations yet).
    pub fn new() -> ImportMemo {
        ImportMemo::default()
    }

    /// The target-arena handle a source handle was translated to, if it
    /// has been imported already.
    pub fn translated(&self, src: NodeRef) -> Option<NodeRef> {
        self.map.get(&src).copied()
    }

    /// Number of source nodes translated so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been imported through this memo yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Memo lookups that found an existing translation (shared
    /// sub-diagrams the copy walk did not have to revisit).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Memo lookups that had to translate a new source node.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl Mtbdd {
    /// Imports the diagram rooted at `root` from `src` into this arena,
    /// returning the equivalent root here.
    ///
    /// Variables are identified by index: variable `v` of `src` is
    /// variable `v` here (the sharded engine guarantees identical failure
    /// variable allocation by construction). Missing variables are
    /// allocated so the copy is always well-formed.
    ///
    /// When auditing is enabled (`YU_AUDIT=1` or a `debug_assertions`
    /// build) every imported root is structurally audited in the target
    /// arena — variable order, canonicity, and dangling references over
    /// the reachable sub-diagram.
    pub fn import(&mut self, src: &Mtbdd, root: NodeRef, memo: &mut ImportMemo) -> NodeRef {
        if src.num_vars() > self.num_vars() {
            let missing = src.num_vars() - self.num_vars();
            self.fresh_vars(missing);
        }
        let r = self.import_rec(src, root, memo);
        if self.audit_on() {
            self.audit_imported(r).assert_ok("imported root");
        }
        r
    }

    /// The memoized copy walk behind [`Mtbdd::import`]: copies `root`
    /// (a handle of `src`) into `self`, re-canonicalizing through
    /// `self`'s unique table.
    pub(crate) fn import_rec(
        &mut self,
        src: &Mtbdd,
        root: NodeRef,
        memo: &mut ImportMemo,
    ) -> NodeRef {
        if let Some(&n) = memo.map.get(&root) {
            memo.hits += 1;
            return n;
        }
        memo.misses += 1;
        let new = if root.is_terminal() {
            self.term(src.terminal_value(root))
        } else {
            let n = src.node_at(root);
            let lo = self.import_rec(src, n.lo, memo);
            let hi = self.import_rec(src, n.hi, memo);
            self.node(n.var, lo, hi)
        };
        memo.map.insert(root, new);
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Op, Ratio, Term};

    fn sample_diagram(m: &mut Mtbdd) -> NodeRef {
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        build_over(m, x1, x2, x3)
    }

    fn build_over(m: &mut Mtbdd, x1: u32, x2: u32, x3: u32) -> NodeRef {
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let g3 = m.nvar_guard(x3);
        let a = m.scale(g1, Term::ratio(1, 3));
        let b = m.add(a, g2);
        m.apply(Op::Mul, b, g3)
    }

    #[test]
    fn import_preserves_semantics() {
        let mut src = Mtbdd::new();
        let f = sample_diagram(&mut src);
        let mut dst = Mtbdd::new();
        let mut memo = ImportMemo::new();
        let g = dst.import(&src, f, &mut memo);
        assert_eq!(dst.num_vars(), src.num_vars());
        for bits in 0..8u32 {
            let assign = |v: u32| bits >> v & 1 == 1;
            assert_eq!(src.eval(f, assign), dst.eval(g, assign), "bits {bits:b}");
        }
    }

    #[test]
    fn import_is_memoized_and_canonical() {
        let mut src = Mtbdd::new();
        let f = sample_diagram(&mut src);
        let mut dst = Mtbdd::new();
        let mut memo = ImportMemo::new();
        let g1 = dst.import(&src, f, &mut memo);
        let translated = memo.len();
        let g2 = dst.import(&src, f, &mut memo);
        assert_eq!(g1, g2, "second import must hit the memo");
        assert_eq!(memo.len(), translated, "no new translations");
        // A natively rebuilt equal function (over the same, already
        // imported variables) is pointer-equal to the import.
        let native = build_over(&mut dst, 0, 1, 2);
        assert_eq!(native, g1, "hash-consing must unify import with native");
    }

    #[test]
    fn import_memo_counts_hits_and_misses() {
        let mut src = Mtbdd::new();
        let f = sample_diagram(&mut src);
        let mut dst = Mtbdd::new();
        let mut memo = ImportMemo::new();
        let _ = dst.import(&src, f, &mut memo);
        let (h1, m1) = (memo.hits(), memo.misses());
        assert_eq!(
            m1 as usize,
            memo.len(),
            "every translation is exactly one miss"
        );
        let _ = dst.import(&src, f, &mut memo);
        assert_eq!(memo.hits(), h1 + 1, "re-import hits the memo at the root");
        assert_eq!(memo.misses(), m1, "no new translations on re-import");
    }

    #[test]
    fn imports_from_two_arenas_unify() {
        let mut a = Mtbdd::new();
        let mut b = Mtbdd::new();
        let fa = sample_diagram(&mut a);
        let fb = sample_diagram(&mut b);
        let mut dst = Mtbdd::new();
        let (mut ma, mut mb) = (ImportMemo::new(), ImportMemo::new());
        let ga = dst.import(&a, fa, &mut ma);
        let gb = dst.import(&b, fb, &mut mb);
        assert_eq!(ga, gb, "equal functions from different arenas must unify");
    }

    #[test]
    fn import_allocates_missing_variables() {
        let mut src = Mtbdd::new();
        let v = src.fresh_vars(5);
        let g = src.var_guard(v + 4);
        let mut dst = Mtbdd::new();
        let mut memo = ImportMemo::new();
        let r = dst.import(&src, g, &mut memo);
        assert_eq!(dst.num_vars(), 5);
        assert_eq!(dst.eval_all_alive(r), Term::ONE);
    }

    #[test]
    fn import_terminal_constants() {
        let mut src = Mtbdd::new();
        let c = src.constant(Ratio::new(7, 3));
        let inf = src.pos_inf();
        let mut dst = Mtbdd::new();
        let mut memo = ImportMemo::new();
        let c2 = dst.import(&src, c, &mut memo);
        let inf2 = dst.import(&src, inf, &mut memo);
        assert_eq!(dst.terminal_value(c2), Term::Num(Ratio::new(7, 3)));
        assert_eq!(dst.terminal_value(inf2), Term::PosInf);
        assert_eq!(inf2, dst.pos_inf());
    }
}
