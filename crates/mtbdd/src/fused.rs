//! Fused `ADD∘KREDUCE`: applying the Definition 5.2 failure budget
//! *during* the apply, so the un-reduced sum is never materialized.
//!
//! Aggregating a link's load sums many per-flow STFs; the paper's Fig. 18
//! shows that the transient of a single un-reduced `F + G` can blow up
//! combinatorially even though its reduction `βₖ(F + G)` is tiny. The
//! classic pipeline (`apply(Add)` then `kreduce`) pays for that transient
//! in full — every node of the sum is hash-consed before the reduction
//! throws most of them away. [`Mtbdd::add_kreduce`] fuses the two
//! recursions into one, memoized on `(op, f, g, k)`:
//!
//! * with no budget left (`k = 0`) only the all-alive branch matters, so
//!   the result is the terminal `f(1…1) ⊕ g(1…1)` — no product structure
//!   is ever built;
//! * at a decision node over `x = min(top(f), top(g))`, the Definition
//!   5.2 recursion applies directly to the (virtual) sum: if
//!   `β_{k-1}(f|x=1 ⊕ g|x=1) = β_{k-1}(f|x=0 ⊕ g|x=0)` the variable test
//!   is dropped, otherwise the failed branch spends one budget unit.
//!
//! By induction on the operand pair, the fused result is **node-for-node
//! identical** to `kreduce(apply(op, f, g), k)` — both are canonical
//! diagrams of the same function in the same arena — which the proptest
//! suite asserts on random diagrams. Only the transient footprint
//! changes: the fused recursion materializes reduced sub-results only,
//! so the arena never holds the Fig. 18 blow-up.
//!
//! The kernel is generic over the commutative arithmetic it fuses
//! (`Add` for aggregation, `Mul` for the volume-scaling variant
//! [`Mtbdd::scale_kreduce`]); operand pairs are canonically ordered
//! before the cache lookup, like the plain apply cache.

use crate::manager::{Mtbdd, Op};
use crate::node::NodeRef;
use crate::terminal::Term;

/// Operand-list cap for the n-ary fused recursion: beyond this the list
/// splits in half (see [`Mtbdd::sum_kreduce`]). Bounds the per-level
/// cofactor arrays and keeps memo keys fixed-width; the split is
/// invisible in the result because `KREDUCE` is canonicalizing.
const MAX_SUM_ARITY: usize = 16;

/// Padding element for [`SumKey`] operand arrays: an impossible raw
/// handle (a terminal index of 2³¹ − 1 would require an arena of two
/// billion distinct terminals), so padded tails can never collide with
/// real operands.
pub(crate) const SUM_PAD: NodeRef = NodeRef(u32::MAX);

/// Memo key for [`Mtbdd::sum_kreduce`]: the sorted, zero-free operand
/// list padded to fixed width, plus the failure budget. `Copy`, so cache
/// probes allocate nothing.
pub(crate) type SumKey = ([NodeRef; MAX_SUM_ARITY], u32);

/// A stack-allocated operand list for the n-ary recursion: sorted,
/// zero-free, at most [`MAX_SUM_ARITY`] entries. `Copy` — passing one
/// down the recursion costs a memcpy of 64 bytes, not a heap clone.
#[derive(Clone, Copy)]
struct SumOps {
    arr: [NodeRef; MAX_SUM_ARITY],
    len: usize,
}

impl SumOps {
    fn new() -> Self {
        Self {
            arr: [SUM_PAD; MAX_SUM_ARITY],
            len: 0,
        }
    }

    /// Appends a non-zero operand (zeros are the additive identity and
    /// must be filtered by the caller).
    fn push(&mut self, r: NodeRef) {
        self.arr[self.len] = r;
        self.len += 1;
    }

    fn ops(&self) -> &[NodeRef] {
        &self.arr[..self.len]
    }

    fn sort(&mut self) {
        self.arr[..self.len].sort_unstable();
    }

    fn key(&self, k: u32) -> SumKey {
        (self.arr, k)
    }
}

impl Mtbdd {
    /// Fused `βₖ(f + g)`: k-failure-reduced pointwise addition that never
    /// materializes the un-reduced sum. Node-for-node identical to
    /// `self.kreduce(self.add(f, g), k)`.
    pub fn add_kreduce(&mut self, f: NodeRef, g: NodeRef, k: u32) -> NodeRef {
        let r = self.fused_rec(Op::Add, f, g, k);
        if self.audit_on() {
            self.audit_fused(r, k, "add_kreduce");
        }
        r
    }

    /// Fused `βₖ(f · c)` for a constant factor `c` (the volume-scaling
    /// step of load aggregation). Node-for-node identical to
    /// `self.kreduce(self.scale(f, c), k)`.
    pub fn scale_kreduce(&mut self, f: NodeRef, c: Term, k: u32) -> NodeRef {
        let c = self.term(c);
        let r = self.fused_rec(Op::Mul, f, c, k);
        if self.audit_on() {
            self.audit_fused(r, k, "scale_kreduce");
        }
        r
    }

    /// Fused `βₖ(min(f, g))`: k-failure-reduced pointwise minimum.
    /// Node-for-node identical to `self.kreduce(self.apply(Op::Min, f, g), k)`
    /// (≈ₖ is a congruence under pointwise `min`, and `KREDUCE` is
    /// canonicalizing, so the same induction as `add_kreduce` applies).
    pub fn min_kreduce(&mut self, f: NodeRef, g: NodeRef, k: u32) -> NodeRef {
        let r = self.fused_rec(Op::Min, f, g, k);
        if self.audit_on() {
            self.audit_fused(r, k, "min_kreduce");
        }
        r
    }

    /// Fused `βₖ(max(f, g))`: k-failure-reduced pointwise maximum (see
    /// [`Mtbdd::min_kreduce`]).
    pub fn max_kreduce(&mut self, f: NodeRef, g: NodeRef, k: u32) -> NodeRef {
        let r = self.fused_rec(Op::Max, f, g, k);
        if self.audit_on() {
            self.audit_fused(r, k, "max_kreduce");
        }
        r
    }

    /// N-ary fused `βₖ(Σ items)`: applies the failure budget once across
    /// the whole aggregation, never materializing any reduced *partial*
    /// sum — the next win beyond [`Mtbdd::add_kreduce`], whose left fold
    /// still hash-conses `βₖ(f₁+f₂)`, `βₖ(f₁+f₂+f₃)`, … as real nodes.
    ///
    /// Node-for-node identical to folding `add_kreduce` over `items`
    /// (asserted by proptest): every partial fold equals `βₖ` of the
    /// partial exact sum because ≈ₖ is a congruence under pointwise `+`
    /// and `KREDUCE` is canonicalizing, so both pipelines end at
    /// `βₖ(Σ items)` — the unique canonical diagram in this arena.
    ///
    /// Memoized on the sorted operand list in a dedicated map cache (a
    /// variable-length key cannot be packed into the direct-mapped
    /// caches without risking false hits). Operand lists longer than
    /// [`MAX_SUM_ARITY`] split in half; `βₖ(βₖ(ΣA) + βₖ(ΣB)) = βₖ(Σ)`
    /// by the same congruence argument, so the split is invisible in the
    /// result.
    pub fn sum_kreduce(&mut self, items: &[NodeRef], k: u32) -> NodeRef {
        // Zeros are additive identity: dropping them leaves the exact
        // sum — and therefore its reduction — unchanged.
        let zero = self.zero();
        let mut ops: Vec<NodeRef> = items.iter().copied().filter(|&f| f != zero).collect();
        ops.sort_unstable();
        let r = self.sum_kreduce_split(&ops, k);
        if self.audit_on() {
            self.audit_fused(r, k, "sum_kreduce");
        }
        r
    }

    /// Halving splitter over a sorted, zero-free operand slice: lists at
    /// or below [`MAX_SUM_ARITY`] drop into the stack-array recursion;
    /// longer ones split in half (`βₖ(βₖ(ΣA) + βₖ(ΣB)) = βₖ(Σ)`).
    fn sum_kreduce_split(&mut self, ops: &[NodeRef], k: u32) -> NodeRef {
        if ops.len() > MAX_SUM_ARITY {
            let (left, right) = ops.split_at(ops.len() / 2);
            let a = self.sum_kreduce_split(left, k);
            let b = self.sum_kreduce_split(right, k);
            return self.fused_rec(Op::Add, a, b, k);
        }
        let mut so = SumOps::new();
        for &f in ops {
            so.push(f);
        }
        self.sum_kreduce_rec(so, k)
    }

    /// Recursion over a pre-sorted, zero-free, stack-allocated operand
    /// list. Every structure this builds lives on the stack — a cache
    /// probe or a recursive call allocates nothing.
    fn sum_kreduce_rec(&mut self, ops: SumOps, k: u32) -> NodeRef {
        match ops.len {
            0 => return self.zero(),
            1 => return self.kreduce_rec(ops.arr[0], k),
            2 => return self.fused_rec(Op::Add, ops.arr[0], ops.arr[1], k),
            _ => {}
        }
        // β₀ and the all-terminal case collapse to one terminal without
        // building any structure.
        if k == 0 || ops.ops().iter().all(|f| f.is_terminal()) {
            let mut acc = Term::ZERO;
            for i in 0..ops.len {
                let t = self.all_alive_ref(ops.arr[i]);
                acc = acc.add(self.terminal_value(t));
            }
            return self.term(acc);
        }
        let key = ops.key(k);
        if let Some(&r) = self.sum_cache.get(&key) {
            return r;
        }
        self.prof_fused_enter();
        let var = ops
            .ops()
            .iter()
            .filter_map(|&f| self.top_var(f))
            .min()
            .expect("non-terminal operand exists");
        // Cofactor lists, dropping zero cofactors as they appear (the
        // additive identity contributes nothing to either branch, and
        // zero-free lists canonicalize the memo key and shrink the
        // sub-recursions).
        let zero = self.zero();
        let mut los = SumOps::new();
        let mut his = SumOps::new();
        for &f in ops.ops() {
            let (lo, hi) = if self.top_var(f) == Some(var) {
                self.cofactors(f)
            } else {
                (f, f)
            };
            if lo != zero {
                los.push(lo);
            }
            if hi != zero {
                his.push(hi);
            }
        }
        los.sort();
        his.sort();
        // Definition 5.2 on the virtual node (var, Σ los, Σ his).
        let hi_km1 = self.sum_kreduce_rec(his, k - 1);
        let lo_km1 = self.sum_kreduce_rec(los, k - 1);
        let r = if hi_km1 == lo_km1 {
            self.sum_kreduce_rec(his, k)
        } else {
            let hi_k = self.sum_kreduce_rec(his, k);
            self.node(var, lo_km1, hi_k)
        };
        self.prof_fused_exit();
        self.sum_cache.insert(key, r);
        r
    }

    /// Lemma 2 postcondition of every fused public entry point, active
    /// under `YU_AUDIT=1` / debug builds (mirrors `kreduce`'s hook).
    fn audit_fused(&self, r: NodeRef, k: u32, what: &str) {
        let mpf = self.max_path_failures(r);
        assert!(
            mpf <= k,
            "fused kernel postcondition violated (Lemma 2): \
             max_path_failures({what} result) = {mpf} > k = {k}"
        );
    }

    fn fused_rec(&mut self, op: Op, f: NodeRef, g: NodeRef, k: u32) -> NodeRef {
        debug_assert!(
            matches!(op, Op::Add | Op::Mul | Op::Min | Op::Max),
            "fused kernel supports Add/Mul/Min/Max, not {op:?}"
        );
        // Apply's terminal shortcuts return a node equal to the exact
        // (un-reduced) result, so reducing it finishes the job without
        // touching the fused cache.
        if let Some(r) = self.shortcut(op, f, g) {
            return self.kreduce_rec(r, k);
        }
        // Budget exhausted: the whole (virtual) result collapses to its
        // all-alive terminal (`β₀`), covering the both-terminal case too.
        if k == 0 || (f.is_terminal() && g.is_terminal()) {
            let fa = self.all_alive_ref(f);
            let ga = self.all_alive_ref(g);
            let t = op.combine(self.terminal_value(fa), self.terminal_value(ga));
            return self.term(t);
        }
        let (f, g) = if op.commutative() && g < f {
            (g, f)
        } else {
            (f, g)
        };
        let (w0, w1) = crate::manager::pack_fused_key(op, f, g, k);
        if let Some(raw) = self.fused_cache.get(w0, w1) {
            return NodeRef(raw);
        }
        self.prof_fused_enter();
        let vf = self.top_var(f).unwrap_or(u32::MAX);
        let vg = self.top_var(g).unwrap_or(u32::MAX);
        let var = vf.min(vg);
        let (f0, f1) = if vf == var { self.cofactors(f) } else { (f, f) };
        let (g0, g1) = if vg == var { self.cofactors(g) } else { (g, g) };
        // Definition 5.2 on the virtual node (var, f0⊕g0, f1⊕g1).
        let hi_km1 = self.fused_rec(op, f1, g1, k - 1);
        let lo_km1 = self.fused_rec(op, f0, g0, k - 1);
        let r = if hi_km1 == lo_km1 {
            self.fused_rec(op, f1, g1, k)
        } else {
            let hi_k = self.fused_rec(op, f1, g1, k);
            self.node(var, lo_km1, hi_k)
        };
        self.prof_fused_exit();
        self.fused_cache.insert(w0, w1, r.0);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ratio;

    fn setup(n: u32) -> Mtbdd {
        let mut m = Mtbdd::new();
        m.fresh_vars(n);
        m
    }

    /// A small Fig. 18-shaped family: flow i contributes volume
    /// `1/(i+1)` along a 2-link path guard, rerouting onto a backup pair
    /// when its first link fails.
    fn flow_stf(m: &mut Mtbdd, i: usize, nvars: u32) -> NodeRef {
        let p0 = (2 * i) as u32 % nvars;
        let p1 = (2 * i + 1) as u32 % nvars;
        let b0 = (2 * i + 3) as u32 % nvars;
        let g0 = m.var_guard(p0);
        let g1 = m.var_guard(p1);
        let primary = m.mul(g0, g1);
        let n0 = m.nvar_guard(p0);
        let gb = m.var_guard(b0);
        let backup = m.mul(n0, gb);
        let path = m.add(primary, backup);
        m.scale(path, Term::Num(Ratio::new(1, i as i128 + 1)))
    }

    #[test]
    fn fused_equals_unfused_node_for_node() {
        let mut m = setup(10);
        for k in 0..=3u32 {
            for i in 0..6 {
                let f = flow_stf(&mut m, i, 10);
                let g = flow_stf(&mut m, i + 3, 10);
                let fused = m.add_kreduce(f, g, k);
                let sum = m.add(f, g);
                let unfused = m.kreduce(sum, k);
                assert_eq!(fused, unfused, "i={i} k={k}");
            }
        }
    }

    #[test]
    fn scale_variant_equals_unfused() {
        let mut m = setup(8);
        for k in 0..=2u32 {
            for i in 0..5 {
                let f = flow_stf(&mut m, i, 8);
                let c = Term::Num(Ratio::new(3, i as i128 + 2));
                let fused = m.scale_kreduce(f, c.clone(), k);
                let scaled = m.scale(f, c);
                let unfused = m.kreduce(scaled, k);
                assert_eq!(fused, unfused, "i={i} k={k}");
            }
        }
    }

    #[test]
    fn zero_and_terminal_shortcuts() {
        let mut m = setup(4);
        let f = flow_stf(&mut m, 0, 4);
        let z = m.zero();
        let reduced = m.kreduce(f, 1);
        assert_eq!(m.add_kreduce(f, z, 1), reduced);
        assert_eq!(m.add_kreduce(z, f, 1), reduced);
        assert_eq!(m.scale_kreduce(f, Term::ONE, 1), reduced);
        assert_eq!(m.scale_kreduce(f, Term::ZERO, 3), m.zero());
        // k = 0 collapses to the all-alive sum without building anything.
        let g = flow_stf(&mut m, 1, 4);
        let r = m.add_kreduce(f, g, 0);
        assert!(r.is_terminal());
        let fa = m.eval_all_alive(f);
        let ga = m.eval_all_alive(g);
        assert_eq!(m.terminal_value(r), fa.add(ga));
    }

    #[test]
    fn fused_cache_is_canonicalized_and_counted() {
        let mut m = setup(10);
        let f = flow_stf(&mut m, 0, 10);
        let g = flow_stf(&mut m, 2, 10);
        let before = m.stats();
        assert_eq!(before.fused_cache_hits, 0);
        let r1 = m.add_kreduce(f, g, 2);
        let mid = m.stats();
        assert!(mid.fused_cache_misses > 0);
        assert!(mid.fused_cache_len > 0);
        // Swapped operands share the canonical entry: a pure root hit.
        let r2 = m.add_kreduce(g, f, 2);
        let after = m.stats();
        assert_eq!(r1, r2);
        assert_eq!(after.fused_cache_misses, mid.fused_cache_misses);
        assert_eq!(after.fused_cache_hits, mid.fused_cache_hits + 1);
    }

    #[test]
    fn fused_avoids_the_unreduced_transient() {
        // Aggregate the whole flow family pairwise both ways in fresh
        // arenas: the fused kernel must materialize strictly fewer inner
        // nodes than add-then-kreduce (it never builds the blow-up).
        let nvars = 20;
        let nflows = 14;
        let k = 2;
        let aggregate = |fused: bool| -> (usize, NodeRef, Mtbdd) {
            let mut m = setup(nvars);
            let mut level: Vec<NodeRef> = (0..nflows)
                .map(|i| {
                    let f = flow_stf(&mut m, i, nvars);
                    m.kreduce(f, k)
                })
                .collect();
            let base = m.stats().nodes_created;
            while level.len() > 1 {
                let mut next = Vec::new();
                for pair in level.chunks(2) {
                    next.push(if pair.len() == 2 {
                        if fused {
                            m.add_kreduce(pair[0], pair[1], k)
                        } else {
                            let s = m.add(pair[0], pair[1]);
                            m.kreduce(s, k)
                        }
                    } else {
                        pair[0]
                    });
                }
                level = next;
            }
            (m.stats().nodes_created - base, level[0], m)
        };
        let (unfused_nodes, r_unfused, m_unfused) = aggregate(false);
        let (fused_nodes, r_fused, m_fused) = aggregate(true);
        assert!(
            fused_nodes < unfused_nodes,
            "fused must materialize fewer transient nodes ({fused_nodes} vs {unfused_nodes})"
        );
        // Same function either way (compare across arenas via import).
        let mut dst = Mtbdd::new();
        let mut ma = crate::ImportMemo::new();
        let mut mb = crate::ImportMemo::new();
        let a = dst.import(&m_unfused, r_unfused, &mut ma);
        let b = dst.import(&m_fused, r_fused, &mut mb);
        assert_eq!(a, b);
    }

    #[test]
    fn min_max_variants_equal_unfused() {
        let mut m = setup(10);
        for k in 0..=2u32 {
            for i in 0..5 {
                let f = flow_stf(&mut m, i, 10);
                let g = flow_stf(&mut m, i + 2, 10);
                let fused_min = m.min_kreduce(f, g, k);
                let plain_min = m.apply(Op::Min, f, g);
                assert_eq!(fused_min, m.kreduce(plain_min, k), "min i={i} k={k}");
                let fused_max = m.max_kreduce(f, g, k);
                let plain_max = m.apply(Op::Max, f, g);
                assert_eq!(fused_max, m.kreduce(plain_max, k), "max i={i} k={k}");
            }
        }
    }

    #[test]
    fn sum_kreduce_equals_folded_add_kreduce() {
        let mut m = setup(12);
        for k in 0..=3u32 {
            for n in 0..=7usize {
                let items: Vec<NodeRef> = (0..n).map(|i| flow_stf(&mut m, i, 12)).collect();
                let nary = m.sum_kreduce(&items, k);
                let folded = items
                    .iter()
                    .fold(m.zero(), |acc, &f| m.add_kreduce(acc, f, k));
                assert_eq!(nary, folded, "n={n} k={k}");
                // And both equal the reduction of the exact sum.
                let exact = m.sum(&items);
                assert_eq!(nary, m.kreduce(exact, k), "vs exact, n={n} k={k}");
            }
        }
    }

    #[test]
    fn sum_kreduce_handles_zeros_terminals_and_large_arity() {
        let mut m = setup(16);
        let z = m.zero();
        let c3 = m.constant(Ratio::int(3));
        let c5 = m.constant(Ratio::new(5, 2));
        // All-terminal list collapses without structure.
        let r = m.sum_kreduce(&[c3, z, c5, c3], 4);
        assert!(r.is_terminal());
        assert_eq!(m.terminal_value(r), Term::ratio(17, 2));
        // Empty and singleton lists.
        assert_eq!(m.sum_kreduce(&[], 2), z);
        let f = flow_stf(&mut m, 0, 16);
        let kf = m.kreduce(f, 1);
        assert_eq!(m.sum_kreduce(&[f], 1), kf);
        assert_eq!(m.sum_kreduce(&[f, z, z], 1), kf);
        // Arity above MAX_SUM_ARITY splits, with an identical result.
        let k = 2;
        let items: Vec<NodeRef> = (0..(MAX_SUM_ARITY + 7))
            .map(|i| flow_stf(&mut m, i, 16))
            .collect();
        let nary = m.sum_kreduce(&items, k);
        let exact = m.sum(&items);
        assert_eq!(nary, m.kreduce(exact, k));
    }

    #[test]
    fn sum_kreduce_materializes_fewer_nodes_than_folding() {
        // The n-ary kernel's whole point: the left fold hash-conses every
        // reduced partial sum; the n-ary recursion skips them.
        let nvars = 20;
        let nflows = 14;
        let k = 2;
        let build = |nary: bool| -> usize {
            let mut m = setup(nvars);
            let items: Vec<NodeRef> = (0..nflows).map(|i| flow_stf(&mut m, i, nvars)).collect();
            let base = m.stats().nodes_created;
            let _ = if nary {
                m.sum_kreduce(&items, k)
            } else {
                items
                    .iter()
                    .fold(m.zero(), |acc, &f| m.add_kreduce(acc, f, k))
            };
            m.stats().nodes_created - base
        };
        let folded = build(false);
        let nary = build(true);
        assert!(
            nary <= folded,
            "n-ary must not materialize more nodes than folding ({nary} vs {folded})"
        );
    }

    #[test]
    fn clear_caches_drops_fused_entries() {
        let mut m = setup(8);
        let f = flow_stf(&mut m, 0, 8);
        let g = flow_stf(&mut m, 1, 8);
        let _ = m.add_kreduce(f, g, 2);
        assert!(m.stats().fused_cache_len > 0);
        m.clear_caches();
        assert_eq!(m.stats().fused_cache_len, 0);
        // Counters are cumulative and survive the clear.
        assert!(m.stats().fused_cache_misses > 0);
    }
}
