//! `KREDUCE`: k-failure-equivalence reduction of MTBDDs (paper §5.2,
//! Definition 5.2, Appendix A).
//!
//! Two MTBDDs are *k-failure equivalent* (`F ≈ₖ G`) when they agree on every
//! assignment with at most `k` zeros (failed elements). `KREDUCE(F, k)`
//! returns a (usually much smaller) MTBDD that is k-failure equivalent to
//! `F` and whose every root-to-terminal path takes at most `k` `lo` (failed)
//! edges — Lemmas 1 and 2 of the paper, tested below and under proptest.
//!
//! The recursion follows Definition 5.2 exactly:
//!
//! * `β₀(F) = F(1, 1, …, 1)` — with no failure budget left, only the
//!   all-alive branch matters, so the whole diagram collapses to a terminal;
//! * `βₖ(c) = c` for terminals;
//! * if `β_{k-1}(F|x=1) = β_{k-1}(F|x=0)`, then `βₖ(F) = βₖ(F|x=1)` — the
//!   two cofactors are indistinguishable with the remaining budget, so the
//!   variable test is dropped even when the cofactors are not isomorphic;
//! * otherwise `βₖ(F) = x·βₖ(F|x=1) + x̄·β_{k-1}(F|x=0)` — taking the failed
//!   branch spends one unit of budget.
//!
//! Memoized on `(node, k)`, so the cost is `O(|F| · k)`.

use crate::manager::Mtbdd;
use crate::node::NodeRef;

impl Mtbdd {
    /// k-failure-equivalence reduction (`KREDUCE(f, k)`, written `βₖ(f)` in
    /// the paper).
    pub fn kreduce(&mut self, f: NodeRef, k: u32) -> NodeRef {
        let r = self.kreduce_rec(f, k);
        if self.audit_on() {
            let mpf = self.max_path_failures(r);
            assert!(
                mpf <= k,
                "KREDUCE postcondition violated (Lemma 2): \
                 max_path_failures(βₖ({f:?})) = {mpf} > k = {k}"
            );
        }
        r
    }

    pub(crate) fn kreduce_rec(&mut self, f: NodeRef, k: u32) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        if k == 0 {
            return self.all_alive_ref(f);
        }
        let (w0, w1) = crate::manager::pack_kreduce_key(f, k);
        if let Some(raw) = self.kreduce_cache.get(w0, w1) {
            return NodeRef(raw);
        }
        self.prof_kreduce_enter();
        let n = self.node_at(f);
        let hi_km1 = self.kreduce_rec(n.hi, k - 1);
        let lo_km1 = self.kreduce_rec(n.lo, k - 1);
        let r = if hi_km1 == lo_km1 {
            self.kreduce_rec(n.hi, k)
        } else {
            let hi_k = self.kreduce_rec(n.hi, k);
            self.node(n.var, lo_km1, hi_k)
        };
        self.prof_kreduce_exit();
        self.kreduce_cache.insert(w0, w1, r.0);
        r
    }

    /// Maximum number of `lo` (failure) edges along any root-to-terminal
    /// path of `f`. After `kreduce(f, k)` this is at most `k` (Lemma 2).
    pub fn max_path_failures(&self, f: NodeRef) -> u32 {
        fn go(m: &Mtbdd, f: NodeRef, memo: &mut std::collections::HashMap<NodeRef, u32>) -> u32 {
            if f.is_terminal() {
                return 0;
            }
            if let Some(&v) = memo.get(&f) {
                return v;
            }
            let n = m.node_at(f);
            let v = go(m, n.hi, memo).max(1 + go(m, n.lo, memo));
            memo.insert(f, v);
            v
        }
        go(self, f, &mut std::collections::HashMap::new())
    }

    /// Whether `f` and `g` are k-failure equivalent, checked structurally by
    /// reducing both (sound and complete because `KREDUCE` is canonicalizing
    /// for ≈ₖ on hash-consed diagrams).
    pub fn k_equivalent(&mut self, f: NodeRef, g: NodeRef, k: u32) -> bool {
        self.kreduce(f, k) == self.kreduce(g, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::terminal::Term;
    use crate::Ratio;

    /// Exhaustively checks `F ≈ₖ KREDUCE(F, k)` over all assignments of the
    /// first `nvars` variables with ≤ k zeros.
    fn assert_k_equivalent(m: &Mtbdd, f: NodeRef, g: NodeRef, nvars: u32, k: u32) {
        for bits in 0..(1u32 << nvars) {
            let zeros = nvars - bits.count_ones();
            if zeros > k {
                continue;
            }
            let assign = |v: u32| bits >> v & 1 == 1;
            assert_eq!(
                m.eval(f, assign),
                m.eval(g, assign),
                "differ at bits {bits:b} (k={k})"
            );
        }
    }

    #[test]
    fn paper_figure8_example() {
        // F = 1 * x1 x̄2 (Fig. 8(b)): KREDUCE(F, 1) = 1 * x̄2.
        let mut m = Mtbdd::new();
        let x1 = m.fresh_var();
        let x2 = m.fresh_var();
        let g1 = m.var_guard(x1);
        let ng2 = m.nvar_guard(x2);
        let f = m.mul(g1, ng2);
        let r = m.kreduce(f, 1);
        assert_eq!(r, ng2, "KREDUCE must drop the x1 test");
        assert_k_equivalent(&m, f, r, 2, 1);
    }

    #[test]
    fn section_52_stl_example() {
        // STL = 60*x1 + 25*(x1 x̄2 + x̄1 x2 x3); for k = 2 the triple-failure
        // term is irrelevant — compare against 60*x1 + 25*x1*x̄2 ... the paper
        // text uses overlines loosely; we check the defining property instead:
        // kreduce result is 2-equivalent and has ≤2 failures per path.
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let ng1 = m.nvar_guard(x1);
        let ng2 = m.nvar_guard(x2);
        let g2 = m.var_guard(x2);
        let g3 = m.var_guard(x3);
        let t60 = m.scale(g1, Term::int(60));
        let a = m.mul(g1, ng2);
        let b = m.mul(ng1, g2);
        let b = m.mul(b, g3);
        let ab = m.add(a, b);
        let t25 = m.scale(ab, Term::int(25));
        let stl = m.add(t60, t25);
        for k in 0..=3 {
            let r = m.kreduce(stl, k);
            assert_k_equivalent(&m, stl, r, 3, k);
            assert!(m.max_path_failures(r) <= k);
        }
    }

    #[test]
    fn kreduce_zero_budget_collapses_to_all_alive_value() {
        let mut m = Mtbdd::new();
        let x1 = m.fresh_var();
        let g = m.var_guard(x1);
        let f = m.scale(g, Term::ratio(1, 2));
        let r = m.kreduce(f, 0);
        assert!(r.is_terminal());
        assert_eq!(m.terminal_value(r), Term::ratio(1, 2));
    }

    #[test]
    fn kreduce_terminal_is_identity() {
        let mut m = Mtbdd::new();
        let _ = m.fresh_var();
        let c = m.constant(Ratio::new(7, 3));
        assert_eq!(m.kreduce(c, 0), c);
        assert_eq!(m.kreduce(c, 5), c);
    }

    #[test]
    fn kreduce_idempotent() {
        let mut m = Mtbdd::new();
        let vars: Vec<_> = (0..4).map(|_| m.fresh_var()).collect();
        // f = sum of x_i * (i+1)
        let mut f = m.zero();
        for (i, &v) in vars.iter().enumerate() {
            let g = m.var_guard(v);
            let s = m.scale(g, Term::int(i as i64 + 1));
            f = m.add(f, s);
        }
        for k in 0..=4 {
            let r1 = m.kreduce(f, k);
            let r2 = m.kreduce(r1, k);
            assert_eq!(r1, r2, "kreduce not idempotent at k={k}");
        }
    }

    #[test]
    fn kreduce_monotone_budget_is_exact_at_full_budget() {
        // With k >= number of variables, kreduce must be semantics-preserving
        // everywhere.
        let mut m = Mtbdd::new();
        let (x1, x2, x3) = (m.fresh_var(), m.fresh_var(), m.fresh_var());
        let g1 = m.nvar_guard(x1);
        let g2 = m.nvar_guard(x2);
        let g3 = m.var_guard(x3);
        let f0 = m.mul(g1, g2);
        let f = m.add(f0, g3);
        let r = m.kreduce(f, 3);
        assert_k_equivalent(&m, f, r, 3, 3);
        for bits in 0..8u32 {
            let assign = |v: u32| bits >> v & 1 == 1;
            assert_eq!(m.eval(f, assign), m.eval(r, assign));
        }
    }

    #[test]
    fn max_path_failures_counts_lo_edges() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.nvar_guard(x1);
        let g2 = m.nvar_guard(x2);
        let f = m.mul(g1, g2); // 1 only when both failed
        assert_eq!(m.max_path_failures(f), 2);
        assert_eq!(m.max_path_failures(m.zero()), 0);
    }

    #[test]
    fn k_equivalent_detects_agreement_within_budget() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let ng1 = m.nvar_guard(x1);
        let ng2 = m.nvar_guard(x2);
        let both_failed = m.mul(ng1, ng2);
        let zero = m.zero();
        assert!(m.k_equivalent(both_failed, zero, 1));
        assert!(!m.k_equivalent(both_failed, zero, 2));
    }
}
