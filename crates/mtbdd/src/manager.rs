//! The MTBDD manager: hash-consed node storage, the generic `apply`
//! operation, ITE, restriction, and evaluation.
//!
//! A [`Mtbdd`] owns every node; user code holds [`NodeRef`] handles. Thanks
//! to hash-consing, structural equality of functions is pointer equality of
//! handles — the property that makes both `KREDUCE`'s sub-graph merging
//! (§5.2 of the paper) and link-local flow equivalence (§5.3) O(1) checks.

use crate::hasher::{fx_hash_words, FxHashMap};
use crate::node::{Node, NodeRef, Var};
use crate::table::{DirectCache, SlotTable};
use crate::terminal::Term;
use crate::Ratio;

/// Binary operations supported by [`Mtbdd::apply`].
///
/// The comparison variants produce 0/1 guard MTBDDs; `Or`/`And` expect 0/1
/// operands (checked in debug builds).
///
/// Discriminants are explicit because the direct-mapped operation caches
/// pack `Op` into their key words; [`Op::from_index`] must invert `as u8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op {
    /// Pointwise addition.
    Add = 0,
    /// Pointwise subtraction.
    Sub = 1,
    /// Pointwise multiplication (`0 * inf = 0`).
    Mul = 2,
    /// Division with the `0/0 = 0` convention of the ECMP encoding.
    Div = 3,
    /// Pointwise minimum.
    Min = 4,
    /// Pointwise maximum.
    Max = 5,
    /// Boolean disjunction of 0/1 guards.
    Or = 6,
    /// Boolean conjunction of 0/1 guards (same as `Mul` on 0/1 operands).
    And = 7,
    /// `1` where the operands are equal, else `0`.
    EqGuard = 8,
    /// `1` where the left operand is strictly smaller, else `0`.
    LtGuard = 9,
}

impl Op {
    /// Inverse of `as u8`, used to decode packed cache keys (audit
    /// sampling). Panics on an index no variant carries.
    pub(crate) fn from_index(i: u8) -> Op {
        match i {
            0 => Op::Add,
            1 => Op::Sub,
            2 => Op::Mul,
            3 => Op::Div,
            4 => Op::Min,
            5 => Op::Max,
            6 => Op::Or,
            7 => Op::And,
            8 => Op::EqGuard,
            9 => Op::LtGuard,
            _ => panic!("invalid Op index {i}"),
        }
    }

    pub(crate) fn commutative(self) -> bool {
        matches!(
            self,
            Op::Add | Op::Mul | Op::Min | Op::Max | Op::Or | Op::And | Op::EqGuard
        )
    }

    pub(crate) fn combine(self, a: Term, b: Term) -> Term {
        match self {
            Op::Add => a.add(b),
            Op::Sub => a.sub(b),
            Op::Mul | Op::And => a.mul(b),
            Op::Div => a.div(b),
            Op::Min => a.min(b),
            Op::Max => a.max(b),
            Op::Or => {
                debug_assert!(a.is_zero() || a.is_one(), "Or on non-boolean terminal {a}");
                debug_assert!(b.is_zero() || b.is_one(), "Or on non-boolean terminal {b}");
                a.max(b)
            }
            Op::EqGuard => {
                if a == b {
                    Term::ONE
                } else {
                    Term::ZERO
                }
            }
            Op::LtGuard => {
                if a < b {
                    Term::ONE
                } else {
                    Term::ZERO
                }
            }
        }
    }
}

/// Unary operations supported by [`Mtbdd::apply1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Op1 {
    /// `1` on finite terminals, `0` on `+∞` — the reachability guard of a
    /// symbolic IGP distance.
    IsFiniteGuard = 0,
    /// Boolean negation of a 0/1 guard.
    Not = 1,
    /// Negation of finite terminals.
    Neg = 2,
}

impl Op1 {
    /// Inverse of `as u8` (see [`Op::from_index`]).
    pub(crate) fn from_index(i: u8) -> Op1 {
        match i {
            0 => Op1::IsFiniteGuard,
            1 => Op1::Not,
            2 => Op1::Neg,
            _ => panic!("invalid Op1 index {i}"),
        }
    }

    pub(crate) fn combine(self, a: Term) -> Term {
        match self {
            Op1::IsFiniteGuard => {
                if a.is_finite() {
                    Term::ONE
                } else {
                    Term::ZERO
                }
            }
            Op1::Not => {
                debug_assert!(a.is_zero() || a.is_one(), "Not on non-boolean terminal {a}");
                if a.is_zero() {
                    Term::ONE
                } else {
                    Term::ZERO
                }
            }
            Op1::Neg => match a {
                Term::Num(r) => Term::Num(-r),
                Term::PosInf => panic!("cannot negate +inf"),
            },
        }
    }
}

/// Statistics of a manager, used by the Fig. 16 experiment (MTBDD node
/// counts with and without `KREDUCE`) and surfaced through the telemetry
/// layer. Creation and hit/miss counts are cumulative (they survive
/// [`Mtbdd::collect`]); `apply_cache_len` is the *current* cache size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct MtbddStats {
    /// Inner nodes currently in the arena (hash-consing misses since the
    /// last collection).
    pub nodes_created: usize,
    /// Distinct terminals currently in the arena.
    pub terminals_created: usize,
    /// Binary apply cache entries right now (a size, not a counter).
    pub apply_cache_len: usize,
    /// Cumulative binary apply cache hits.
    pub apply_cache_hits: u64,
    /// Cumulative binary apply cache misses (memoized recursions).
    pub apply_cache_misses: u64,
    /// Cumulative binary apply cache evictions (direct-mapped collision
    /// overwrites plus entries dropped by [`Mtbdd::clear_caches`]/GC).
    pub apply_cache_evictions: u64,
    /// Fused `op∘KREDUCE` cache entries right now (a size, not a counter).
    pub fused_cache_len: usize,
    /// Cumulative fused-kernel cache hits (see [`Mtbdd::add_kreduce`]).
    pub fused_cache_hits: u64,
    /// Cumulative fused-kernel cache misses (memoized recursions).
    pub fused_cache_misses: u64,
    /// Cumulative fused-kernel cache evictions.
    pub fused_cache_evictions: u64,
    /// Cumulative unary apply cache hits.
    pub apply1_cache_hits: u64,
    /// Cumulative unary apply cache misses.
    pub apply1_cache_misses: u64,
    /// Cumulative unary apply cache evictions.
    pub apply1_cache_evictions: u64,
    /// Cumulative ITE cache hits.
    pub ite_cache_hits: u64,
    /// Cumulative ITE cache misses.
    pub ite_cache_misses: u64,
    /// Cumulative ITE cache evictions.
    pub ite_cache_evictions: u64,
    /// Cumulative restrict cache hits.
    pub restrict_cache_hits: u64,
    /// Cumulative restrict cache misses.
    pub restrict_cache_misses: u64,
    /// Cumulative restrict cache evictions.
    pub restrict_cache_evictions: u64,
    /// Cumulative `KREDUCE` cache hits.
    pub kreduce_cache_hits: u64,
    /// Cumulative `KREDUCE` cache misses.
    pub kreduce_cache_misses: u64,
    /// Cumulative `KREDUCE` cache evictions.
    pub kreduce_cache_evictions: u64,
    /// Cumulative all-alive (`β₀` terminal) cache hits.
    pub alive_cache_hits: u64,
    /// Cumulative all-alive cache misses (hi-chain walks performed).
    pub alive_cache_misses: u64,
    /// Cumulative all-alive cache evictions.
    pub alive_cache_evictions: u64,
    /// High-water mark of the unique (inner-node) table, across
    /// collections.
    pub unique_table_peak: usize,
    /// Number of garbage collections run.
    pub gc_runs: u64,
    /// Total inner nodes reclaimed by garbage collections.
    pub gc_reclaimed_nodes: u64,
}

impl MtbddStats {
    /// Accumulates another manager's statistics into this one (used to
    /// report totals across the sharded worker arenas of a parallel run).
    /// Counts (`nodes_created`, hits, misses, GC totals) are summed;
    /// sizes (`apply_cache_len`, `unique_table_peak`) take the per-arena
    /// maximum — summing a length across arenas would report capacity
    /// nobody ever allocated at once.
    pub fn merge(&mut self, other: &MtbddStats) {
        self.nodes_created += other.nodes_created;
        self.terminals_created += other.terminals_created;
        self.apply_cache_len = self.apply_cache_len.max(other.apply_cache_len);
        self.apply_cache_hits += other.apply_cache_hits;
        self.apply_cache_misses += other.apply_cache_misses;
        self.apply_cache_evictions += other.apply_cache_evictions;
        self.fused_cache_len = self.fused_cache_len.max(other.fused_cache_len);
        self.fused_cache_hits += other.fused_cache_hits;
        self.fused_cache_misses += other.fused_cache_misses;
        self.fused_cache_evictions += other.fused_cache_evictions;
        self.apply1_cache_hits += other.apply1_cache_hits;
        self.apply1_cache_misses += other.apply1_cache_misses;
        self.apply1_cache_evictions += other.apply1_cache_evictions;
        self.ite_cache_hits += other.ite_cache_hits;
        self.ite_cache_misses += other.ite_cache_misses;
        self.ite_cache_evictions += other.ite_cache_evictions;
        self.restrict_cache_hits += other.restrict_cache_hits;
        self.restrict_cache_misses += other.restrict_cache_misses;
        self.restrict_cache_evictions += other.restrict_cache_evictions;
        self.kreduce_cache_hits += other.kreduce_cache_hits;
        self.kreduce_cache_misses += other.kreduce_cache_misses;
        self.kreduce_cache_evictions += other.kreduce_cache_evictions;
        self.alive_cache_hits += other.alive_cache_hits;
        self.alive_cache_misses += other.alive_cache_misses;
        self.alive_cache_evictions += other.alive_cache_evictions;
        self.unique_table_peak = self.unique_table_peak.max(other.unique_table_peak);
        self.gc_runs += other.gc_runs;
        self.gc_reclaimed_nodes += other.gc_reclaimed_nodes;
    }

    /// Apply-cache hit rate in `[0, 1]`, or `None` before any lookups.
    pub fn apply_cache_hit_rate(&self) -> Option<f64> {
        let total = self.apply_cache_hits + self.apply_cache_misses;
        (total > 0).then(|| self.apply_cache_hits as f64 / total as f64)
    }

    /// Fused-kernel cache hit rate in `[0, 1]`, or `None` before any
    /// lookups (mirrors [`MtbddStats::apply_cache_hit_rate`]).
    pub fn fused_cache_hit_rate(&self) -> Option<f64> {
        let total = self.fused_cache_hits + self.fused_cache_misses;
        (total > 0).then(|| self.fused_cache_hits as f64 / total as f64)
    }
}

/// Probe-length statistics of the open-addressed unique table,
/// accumulated over every node lookup since the arena was created (GC
/// preserves them). Deterministic for a fixed operation sequence: the
/// table uses a fixed hash, linear probing, and deterministic growth, so
/// these numbers are machine-independent and CI can gate on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct UniqueProbeStats {
    /// Unique-table lookups (node constructor calls that reached the
    /// table, i.e. not elided by `lo == hi`).
    pub lookups: u64,
    /// Total occupied slots stepped over across all lookups.
    pub total_steps: u64,
    /// Worst single-lookup probe length.
    pub max_steps: u32,
    /// Lookups resolved at the home slot (zero steps).
    pub direct: u64,
    /// Lookups that found an existing node (hash-consing hits).
    pub hits: u64,
}

impl UniqueProbeStats {
    /// Mean probe length per lookup (0 before any lookups).
    pub fn mean(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_steps as f64 / self.lookups as f64
        }
    }
}

/// Packs an inner node into the two key words hashed by the unique table.
#[inline]
pub(crate) fn hash_node(n: &Node) -> u64 {
    fx_hash_words((n.lo.0 as u64) | ((n.hi.0 as u64) << 32), n.var as u64)
}

// Key packings for the direct-mapped operation caches. Each key fits two
// `u64` words; the audit sampler inverts `pack_apply_key`/`pack_apply1_key`
// to re-validate resident entries, so keep pack/unpack in sync.

#[inline]
pub(crate) fn pack_apply_key(op: Op, f: NodeRef, g: NodeRef) -> (u64, u64) {
    ((f.0 as u64) | ((g.0 as u64) << 32), op as u64)
}

pub(crate) fn unpack_apply_key(w0: u64, w1: u64) -> (Op, NodeRef, NodeRef) {
    (
        Op::from_index(w1 as u8),
        NodeRef(w0 as u32),
        NodeRef((w0 >> 32) as u32),
    )
}

#[inline]
pub(crate) fn pack_apply1_key(op: Op1, f: NodeRef) -> (u64, u64) {
    (f.0 as u64, op as u64)
}

pub(crate) fn unpack_apply1_key(w0: u64, w1: u64) -> (Op1, NodeRef) {
    (Op1::from_index(w1 as u8), NodeRef(w0 as u32))
}

#[inline]
pub(crate) fn pack_ite_key(c: NodeRef, t: NodeRef, e: NodeRef) -> (u64, u64) {
    ((c.0 as u64) | ((t.0 as u64) << 32), e.0 as u64)
}

#[inline]
pub(crate) fn pack_restrict_key(f: NodeRef, var: Var, val: bool) -> (u64, u64) {
    ((f.0 as u64) | ((var as u64) << 32), val as u64)
}

#[inline]
pub(crate) fn pack_kreduce_key(f: NodeRef, k: u32) -> (u64, u64) {
    ((f.0 as u64) | ((k as u64) << 32), 0)
}

#[inline]
pub(crate) fn pack_fused_key(op: Op, f: NodeRef, g: NodeRef, k: u32) -> (u64, u64) {
    (
        (f.0 as u64) | ((g.0 as u64) << 32),
        (op as u64) | ((k as u64) << 8),
    )
}

/// The immutable payload behind a [`FrozenMtbdd`]: the flat node arena,
/// its unique table, and the terminal pool, all read-only. Overlay
/// managers hold an `Arc` to this and resolve indices below the partition
/// point against it.
pub(crate) struct FrozenInner {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: SlotTable,
    pub(crate) terms: Vec<Term>,
    pub(crate) term_ids: FxHashMap<Term, NodeRef>,
    pub(crate) num_vars: u32,
    pub(crate) zero: NodeRef,
    pub(crate) one: NodeRef,
    pub(crate) pos_inf: NodeRef,
}

/// An immutable, shareable snapshot of a manager's arena.
///
/// Produced by [`Mtbdd::freeze`]; check workers call
/// [`Mtbdd::with_base`] to get a private overlay manager whose reads of
/// frozen nodes are zero-copy (every `NodeRef` issued by the frozen
/// manager stays valid, same bits) and whose writes land in a small
/// private arena. `FrozenMtbdd` is `Send + Sync` by construction: it is
/// plain owned data behind an `Arc` with no interior mutability
/// (guaranteed by the crate-wide `#![forbid(unsafe_code)]`).
#[derive(Clone)]
pub struct FrozenMtbdd {
    inner: std::sync::Arc<FrozenInner>,
}

impl FrozenMtbdd {
    /// Inner nodes in the frozen arena.
    pub fn live_nodes(&self) -> usize {
        self.inner.nodes.len()
    }

    /// Number of variables allocated when the arena was frozen.
    pub fn num_vars(&self) -> u32 {
        self.inner.num_vars
    }
}

/// A multi-terminal binary decision diagram manager.
///
/// Variables are `u32` levels with variable 0 on top; by the failure
/// convention `1` means "alive" and `0` means "failed", so the number of
/// failures along a path is the number of `lo` edges taken.
///
/// Storage is a flat arena: inner nodes live in a bump-allocated
/// `Vec<Node>` addressed by `u32` index, the unique table is an
/// open-addressed [`SlotTable`] of indices, and the operation caches are
/// direct-mapped [`DirectCache`]s keyed by packed words. A manager may
/// additionally sit on top of a frozen base arena (see
/// [`Mtbdd::with_base`]); the global index space is then partitioned at
/// `base_nodes`/`base_terms` — indices below resolve in the shared
/// read-only base, indices at or above in the private vectors.
pub struct Mtbdd {
    pub(crate) base: Option<std::sync::Arc<FrozenInner>>,
    pub(crate) base_nodes: usize,
    pub(crate) base_terms: usize,
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: SlotTable,
    pub(crate) terms: Vec<Term>,
    pub(crate) term_ids: FxHashMap<Term, NodeRef>,
    pub(crate) apply_cache: DirectCache,
    pub(crate) apply1_cache: DirectCache,
    pub(crate) ite_cache: DirectCache,
    pub(crate) restrict_cache: DirectCache,
    pub(crate) kreduce_cache: DirectCache,
    pub(crate) fused_cache: DirectCache,
    /// Memo for the n-ary fused aggregate ([`Mtbdd::sum_kreduce`]). Keys
    /// are fixed-width operand arrays (sorted, zero-free, padded with
    /// [`crate::fused::SUM_PAD`]) plus the budget — `Copy`, so lookups
    /// never allocate. It stays a map rather than a direct-mapped cache:
    /// packing a 16-operand list into two words would force hash-only
    /// keys and risk false hits.
    pub(crate) sum_cache: FxHashMap<crate::fused::SumKey, NodeRef>,
    /// Memo for [`Mtbdd::all_alive_ref`]: node index → terminal handle of
    /// the all-alive (`β₀`) evaluation. Path-compressed — one walk caches
    /// the answer for every node on the hi-chain — so the `k == 0`
    /// collapses in the `KREDUCE`/fused kernels amortize to one probe
    /// instead of re-walking a hi-chain at every recursion leaf.
    pub(crate) alive_cache: DirectCache,
    num_vars: u32,
    zero: NodeRef,
    one: NodeRef,
    pos_inf: NodeRef,
    /// Whether invariant auditing (see `audit.rs`) is active for this
    /// manager; latched from `YU_AUDIT`/debug_assertions at construction.
    audit_enabled: bool,
    /// Operation counter driving sampled apply-cache re-validation.
    audit_ops: u64,
    /// Cumulative counters surfaced via [`MtbddStats`]; `gc.rs` preserves
    /// them across collections. (Per-cache hit/miss/eviction counters
    /// live inside each [`DirectCache`].)
    pub(crate) unique_peak: usize,
    pub(crate) gc_runs: u64,
    pub(crate) gc_reclaimed: u64,
    /// Unique-table probe instrumentation: lookups, total probe steps,
    /// worst probe, zero-step (home-slot) resolutions, and lookups that
    /// found an existing node (hash-consing hits). For overlay managers a
    /// lookup's steps sum the base probe and the private probe.
    pub(crate) unique_lookups: u64,
    pub(crate) unique_probe_steps: u64,
    pub(crate) unique_probe_max: u32,
    pub(crate) unique_direct: u64,
    pub(crate) unique_hits: u64,
    /// Whether kernel recursion-depth tracking (see `profile.rs`) is
    /// active for this manager; latched from `YU_ENGINE_PROFILE` (or
    /// its programmatic override) at construction.
    profile_enabled: bool,
    /// Current and maximum recursion depth per memoized kernel, only
    /// maintained when `profile_enabled` is set. The maxima survive GC.
    prof_apply_depth: u32,
    pub(crate) prof_apply_depth_max: u32,
    prof_fused_depth: u32,
    pub(crate) prof_fused_depth_max: u32,
    prof_kreduce_depth: u32,
    pub(crate) prof_kreduce_depth_max: u32,
}

impl Default for Mtbdd {
    fn default() -> Self {
        Self::new()
    }
}

impl Mtbdd {
    fn empty() -> Mtbdd {
        Mtbdd {
            base: None,
            base_nodes: 0,
            base_terms: 0,
            nodes: Vec::new(),
            unique: SlotTable::new(),
            terms: Vec::new(),
            term_ids: FxHashMap::default(),
            apply_cache: DirectCache::new(),
            apply1_cache: DirectCache::new(),
            ite_cache: DirectCache::new(),
            restrict_cache: DirectCache::new(),
            kreduce_cache: DirectCache::new(),
            fused_cache: DirectCache::new(),
            sum_cache: FxHashMap::default(),
            alive_cache: DirectCache::new(),
            num_vars: 0,
            zero: NodeRef(0),
            one: NodeRef(0),
            pos_inf: NodeRef(0),
            audit_enabled: crate::audit::audit_enabled(),
            audit_ops: 0,
            unique_peak: 0,
            gc_runs: 0,
            gc_reclaimed: 0,
            unique_lookups: 0,
            unique_probe_steps: 0,
            unique_probe_max: 0,
            unique_direct: 0,
            unique_hits: 0,
            profile_enabled: crate::profile::engine_profile_enabled(),
            prof_apply_depth: 0,
            prof_apply_depth_max: 0,
            prof_fused_depth: 0,
            prof_fused_depth_max: 0,
            prof_kreduce_depth: 0,
            prof_kreduce_depth_max: 0,
        }
    }

    /// Creates an empty manager with no variables allocated.
    pub fn new() -> Mtbdd {
        let mut m = Mtbdd::empty();
        m.zero = m.term(Term::ZERO);
        m.one = m.term(Term::ONE);
        m.pos_inf = m.term(Term::PosInf);
        m
    }

    /// Snapshots this arena into an immutable, `Sync` view that overlay
    /// managers (see [`Mtbdd::with_base`]) share zero-copy. Node and
    /// terminal handles issued by `self` remain valid — same bits — in
    /// every overlay.
    ///
    /// # Panics
    /// Panics if `self` is itself an overlay (freezing an overlay would
    /// alias two base generations and is never needed).
    pub fn freeze(&self) -> FrozenMtbdd {
        assert!(
            self.base.is_none(),
            "freeze() on an overlay manager is not supported"
        );
        FrozenMtbdd {
            inner: std::sync::Arc::new(FrozenInner {
                nodes: self.nodes.clone(),
                unique: self.unique.clone(),
                terms: self.terms.clone(),
                term_ids: self.term_ids.clone(),
                num_vars: self.num_vars,
                zero: self.zero,
                one: self.one,
                pos_inf: self.pos_inf,
            }),
        }
    }

    /// Creates a private overlay manager on top of a frozen base arena.
    ///
    /// Reads of base nodes cost one `Arc` indirection and no copies;
    /// nodes and terminals created through the overlay land in private
    /// vectors whose global indices start at the base sizes, so base and
    /// private handles share one index space. [`Mtbdd::stats`] of an
    /// overlay reports only privately created nodes — exactly the
    /// allocation attributable to the overlay's work.
    pub fn with_base(frozen: &FrozenMtbdd) -> Mtbdd {
        let inner = std::sync::Arc::clone(&frozen.inner);
        let mut m = Mtbdd::empty();
        m.base_nodes = inner.nodes.len();
        m.base_terms = inner.terms.len();
        m.num_vars = inner.num_vars;
        m.zero = inner.zero;
        m.one = inner.one;
        m.pos_inf = inner.pos_inf;
        m.base = Some(inner);
        m
    }

    /// Allocates a fresh boolean failure variable (appended at the bottom of
    /// the current order).
    pub fn fresh_var(&mut self) -> Var {
        let v = self.num_vars;
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables and returns the first.
    pub fn fresh_vars(&mut self, n: u32) -> Var {
        let first = self.num_vars;
        self.num_vars += n;
        first
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The constant 0 MTBDD.
    pub fn zero(&self) -> NodeRef {
        self.zero
    }

    /// The constant 1 MTBDD.
    pub fn one(&self) -> NodeRef {
        self.one
    }

    /// The constant `+∞` MTBDD.
    pub fn pos_inf(&self) -> NodeRef {
        self.pos_inf
    }

    /// The constant MTBDD with terminal `t`.
    pub fn term(&mut self, t: Term) -> NodeRef {
        if let Some(base) = &self.base {
            if let Some(&r) = base.term_ids.get(&t) {
                return r;
            }
        }
        if let Some(&r) = self.term_ids.get(&t) {
            return r;
        }
        let r = NodeRef::terminal(self.base_terms + self.terms.len());
        self.terms.push(t.clone());
        self.term_ids.insert(t, r);
        r
    }

    /// Constant MTBDD from a rational.
    pub fn constant(&mut self, r: Ratio) -> NodeRef {
        self.term(Term::Num(r))
    }

    /// The terminal value of a terminal reference.
    ///
    /// # Panics
    /// Panics if `f` is not a terminal.
    pub fn terminal_value(&self, f: NodeRef) -> Term {
        assert!(f.is_terminal(), "terminal_value on inner node");
        let ix = f.index();
        if ix < self.base_terms {
            self.base
                .as_ref()
                .expect("base_terms > 0 without base")
                .terms[ix]
                .clone()
        } else {
            self.terms[ix - self.base_terms].clone()
        }
    }

    pub(crate) fn node_at(&self, f: NodeRef) -> Node {
        debug_assert!(!f.is_terminal());
        let ix = f.index();
        if ix < self.base_nodes {
            self.base
                .as_ref()
                .expect("base_nodes > 0 without base")
                .nodes[ix]
        } else {
            self.nodes[ix - self.base_nodes]
        }
    }

    /// Total inner nodes addressable through this manager (base plus
    /// private for overlays).
    pub(crate) fn total_nodes(&self) -> usize {
        self.base_nodes + self.nodes.len()
    }

    /// Total terminals addressable through this manager.
    pub(crate) fn total_terms(&self) -> usize {
        self.base_terms + self.terms.len()
    }

    /// Top variable of `f`, if it is an inner node.
    pub fn top_var(&self, f: NodeRef) -> Option<Var> {
        if f.is_terminal() {
            None
        } else {
            Some(self.node_at(f).var)
        }
    }

    /// The two cofactors of `f` (children if `f` tests a variable, `f`
    /// itself otherwise).
    pub fn cofactors(&self, f: NodeRef) -> (NodeRef, NodeRef) {
        if f.is_terminal() {
            (f, f)
        } else {
            let n = self.node_at(f);
            (n.lo, n.hi)
        }
    }

    /// Canonical node constructor (the classic `mk`).
    pub fn node(&mut self, var: Var, lo: NodeRef, hi: NodeRef) -> NodeRef {
        debug_assert!(var < self.num_vars, "variable {var} not allocated");
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.top_var(lo).is_none_or(|v| v > var) && self.top_var(hi).is_none_or(|v| v > var),
            "variable order violation at var {var}"
        );
        let n = Node { var, lo, hi };
        let hash = hash_node(&n);
        let mut steps = 0u32;
        if let Some(base) = &self.base {
            let p = base.unique.probe(hash, |ix| base.nodes[ix as usize] == n);
            steps = p.steps;
            if let Some(ix) = p.found {
                self.book_unique_probe(steps, true);
                return NodeRef::inner(ix as usize);
            }
        }
        if self.unique.needs_grow() {
            let base_nodes = self.base_nodes;
            let nodes = &self.nodes;
            self.unique
                .grow(|ix| hash_node(&nodes[ix as usize - base_nodes]));
        }
        let base_nodes = self.base_nodes;
        let nodes = &self.nodes;
        let p = self
            .unique
            .probe(hash, |ix| nodes[ix as usize - base_nodes] == n);
        steps += p.steps;
        if let Some(ix) = p.found {
            self.book_unique_probe(steps, true);
            return NodeRef::inner(ix as usize);
        }
        self.book_unique_probe(steps, false);
        let r = NodeRef::inner(self.base_nodes + self.nodes.len());
        self.nodes.push(n);
        self.unique.insert_at(p.slot, r.0);
        r
    }

    #[inline]
    fn book_unique_probe(&mut self, steps: u32, hit: bool) {
        self.unique_lookups += 1;
        self.unique_probe_steps += steps as u64;
        self.unique_probe_max = self.unique_probe_max.max(steps);
        if steps == 0 {
            self.unique_direct += 1;
        }
        if hit {
            self.unique_hits += 1;
        }
    }

    /// The guard MTBDD of a single variable: `1` where `var = 1` (alive),
    /// `0` where it failed.
    pub fn var_guard(&mut self, var: Var) -> NodeRef {
        let (zero, one) = (self.zero, self.one);
        self.node(var, zero, one)
    }

    /// The guard MTBDD `1` where `var = 0` (failed).
    pub fn nvar_guard(&mut self, var: Var) -> NodeRef {
        let (zero, one) = (self.zero, self.one);
        self.node(var, one, zero)
    }

    /// Generic binary apply with memoization.
    pub fn apply(&mut self, op: Op, f: NodeRef, g: NodeRef) -> NodeRef {
        // Terminal short-circuits that don't require recursion.
        if let Some(r) = self.shortcut(op, f, g) {
            return r;
        }
        let (f, g) = if op.commutative() && g < f {
            (g, f)
        } else {
            (f, g)
        };
        let (w0, w1) = pack_apply_key(op, f, g);
        if let Some(raw) = self.apply_cache.get(w0, w1) {
            let r = NodeRef(raw);
            if self.audit_enabled {
                self.audit_apply_tick(op, f, g, r);
            }
            return r;
        }
        if self.profile_enabled {
            self.prof_apply_depth += 1;
            self.prof_apply_depth_max = self.prof_apply_depth_max.max(self.prof_apply_depth);
        }
        let r = if f.is_terminal() && g.is_terminal() {
            let t = op.combine(self.terminal_value(f), self.terminal_value(g));
            self.term(t)
        } else {
            let vf = self.top_var(f).unwrap_or(u32::MAX);
            let vg = self.top_var(g).unwrap_or(u32::MAX);
            let var = vf.min(vg);
            let (f0, f1) = if vf == var { self.cofactors(f) } else { (f, f) };
            let (g0, g1) = if vg == var { self.cofactors(g) } else { (g, g) };
            let lo = self.apply(op, f0, g0);
            let hi = self.apply(op, f1, g1);
            self.node(var, lo, hi)
        };
        if self.profile_enabled {
            self.prof_apply_depth -= 1;
        }
        self.apply_cache.insert(w0, w1, r.0);
        if self.audit_enabled {
            self.audit_apply_tick(op, f, g, r);
        }
        r
    }

    pub(crate) fn shortcut(&mut self, op: Op, f: NodeRef, g: NodeRef) -> Option<NodeRef> {
        let ft = f.is_terminal().then(|| self.terminal_value(f));
        let gt = g.is_terminal().then(|| self.terminal_value(g));
        match op {
            Op::Add => {
                if ft == Some(Term::ZERO) {
                    return Some(g);
                }
                if gt == Some(Term::ZERO) {
                    return Some(f);
                }
            }
            Op::Sub => {
                if gt == Some(Term::ZERO) {
                    return Some(f);
                }
            }
            Op::Mul | Op::And => {
                if ft == Some(Term::ZERO) || gt == Some(Term::ZERO) {
                    return Some(self.zero);
                }
                if ft == Some(Term::ONE) {
                    return Some(g);
                }
                if gt == Some(Term::ONE) {
                    return Some(f);
                }
            }
            Op::Div => {
                if ft == Some(Term::ZERO) {
                    return Some(self.zero);
                }
                if gt == Some(Term::ONE) {
                    return Some(f);
                }
            }
            Op::Min => {
                if f == g || ft == Some(Term::PosInf) {
                    return Some(g);
                }
                if gt == Some(Term::PosInf) {
                    return Some(f);
                }
            }
            Op::Max => {
                if f == g {
                    return Some(f);
                }
                if ft == Some(Term::PosInf) || gt == Some(Term::PosInf) {
                    return Some(self.pos_inf);
                }
            }
            Op::Or => {
                if f == g || ft == Some(Term::ZERO) {
                    return Some(g);
                }
                if gt == Some(Term::ZERO) {
                    return Some(f);
                }
                if ft == Some(Term::ONE) || gt == Some(Term::ONE) {
                    return Some(self.one);
                }
            }
            Op::EqGuard => {
                if f == g {
                    return Some(self.one);
                }
            }
            Op::LtGuard => {
                if f == g {
                    return Some(self.zero);
                }
            }
        }
        None
    }

    /// Generic unary apply with memoization.
    pub fn apply1(&mut self, op: Op1, f: NodeRef) -> NodeRef {
        let (w0, w1) = pack_apply1_key(op, f);
        if let Some(raw) = self.apply1_cache.get(w0, w1) {
            return NodeRef(raw);
        }
        let r = if f.is_terminal() {
            let t = op.combine(self.terminal_value(f));
            self.term(t)
        } else {
            let n = self.node_at(f);
            let lo = self.apply1(op, n.lo);
            let hi = self.apply1(op, n.hi);
            self.node(n.var, lo, hi)
        };
        self.apply1_cache.insert(w0, w1, r.0);
        r
    }

    /// If-then-else over a 0/1 guard `c`: the function equal to `t` where
    /// `c = 1` and `e` where `c = 0`.
    pub fn ite(&mut self, c: NodeRef, t: NodeRef, e: NodeRef) -> NodeRef {
        if c.is_terminal() {
            let tv = self.terminal_value(c);
            debug_assert!(tv.is_zero() || tv.is_one(), "ite condition not boolean");
            return if tv.is_one() { t } else { e };
        }
        if t == e {
            return t;
        }
        let (w0, w1) = pack_ite_key(c, t, e);
        if let Some(raw) = self.ite_cache.get(w0, w1) {
            return NodeRef(raw);
        }
        let vc = self.node_at(c).var;
        let vt = self.top_var(t).unwrap_or(u32::MAX);
        let ve = self.top_var(e).unwrap_or(u32::MAX);
        let var = vc.min(vt).min(ve);
        let (c0, c1) = if vc == var { self.cofactors(c) } else { (c, c) };
        let (t0, t1) = if vt == var { self.cofactors(t) } else { (t, t) };
        let (e0, e1) = if ve == var { self.cofactors(e) } else { (e, e) };
        let lo = self.ite(c0, t0, e0);
        let hi = self.ite(c1, t1, e1);
        let r = self.node(var, lo, hi);
        self.ite_cache.insert(w0, w1, r.0);
        r
    }

    /// Convenience: `f + g`.
    pub fn add(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::Add, f, g)
    }

    /// Convenience: `f * g`.
    pub fn mul(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::Mul, f, g)
    }

    /// Convenience: `f * c` for a scalar.
    pub fn scale(&mut self, f: NodeRef, c: Term) -> NodeRef {
        let c = self.term(c);
        self.apply(Op::Mul, f, c)
    }

    /// Boolean conjunction of 0/1 guards.
    pub fn and(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::And, f, g)
    }

    /// Boolean disjunction of 0/1 guards.
    pub fn or(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::Or, f, g)
    }

    /// Boolean negation of a 0/1 guard.
    pub fn not(&mut self, f: NodeRef) -> NodeRef {
        self.apply1(Op1::Not, f)
    }

    /// 0/1 guard that is `1` exactly where `f = g`.
    pub fn eq_guard(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::EqGuard, f, g)
    }

    /// 0/1 guard that is `1` exactly where `f < g`.
    pub fn lt_guard(&mut self, f: NodeRef, g: NodeRef) -> NodeRef {
        self.apply(Op::LtGuard, f, g)
    }

    /// 0/1 guard that is `1` where `f` is finite (reachability of a distance).
    pub fn is_finite_guard(&mut self, f: NodeRef) -> NodeRef {
        self.apply1(Op1::IsFiniteGuard, f)
    }

    /// Balanced n-ary sum, keeping intermediate diagrams small.
    pub fn sum(&mut self, items: &[NodeRef]) -> NodeRef {
        match items.len() {
            0 => self.zero,
            1 => items[0],
            n => {
                let (a, b) = items.split_at(n / 2);
                let (sa, sb) = (self.sum(a), self.sum(b));
                self.add(sa, sb)
            }
        }
    }

    /// Restricts `f` by fixing `var := val`.
    pub fn restrict(&mut self, f: NodeRef, var: Var, val: bool) -> NodeRef {
        if f.is_terminal() || self.node_at(f).var > var {
            return f;
        }
        let (w0, w1) = pack_restrict_key(f, var, val);
        if let Some(raw) = self.restrict_cache.get(w0, w1) {
            return NodeRef(raw);
        }
        let n = self.node_at(f);
        let r = if n.var == var {
            if val {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict(n.lo, var, val);
            let hi = self.restrict(n.hi, var, val);
            self.node(n.var, lo, hi)
        };
        self.restrict_cache.insert(w0, w1, r.0);
        r
    }

    /// Evaluates `f` under a complete assignment (`assign(v)` is the value
    /// of variable `v`; `true` = alive).
    pub fn eval(&self, f: NodeRef, assign: impl Fn(Var) -> bool) -> Term {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node_at(cur);
            cur = if assign(n.var) { n.hi } else { n.lo };
        }
        self.terminal_value(cur)
    }

    /// Evaluates `f` with every variable alive (the no-failure scenario).
    pub fn eval_all_alive(&self, f: NodeRef) -> Term {
        self.eval(f, |_| true)
    }

    /// Memoized all-alive evaluation returning the terminal *handle*
    /// (terminals are hash-consed, so this is interchangeable with
    /// `term(eval_all_alive(f))`). The walk is path-compressed: every
    /// inner node on the traversed hi-chain gets the answer cached, so
    /// the `β₀` collapses that terminate the `KREDUCE`/fused/n-ary
    /// recursions cost one cache probe amortized instead of an O(vars)
    /// chain walk per recursion leaf.
    pub(crate) fn all_alive_ref(&mut self, f: NodeRef) -> NodeRef {
        if f.is_terminal() {
            return f;
        }
        let mut cur = f;
        let (stop, t) = loop {
            if cur.is_terminal() {
                break (cur, cur);
            }
            if let Some(raw) = self.alive_cache.get(cur.0 as u64, 0) {
                break (cur, NodeRef(raw));
            }
            cur = self.node_at(cur).hi;
        };
        let mut p = f;
        while p != stop {
            self.alive_cache.insert(p.0 as u64, 0, t.0);
            p = self.node_at(p).hi;
        }
        t
    }

    /// Number of inner nodes reachable from `f`.
    pub fn node_count(&self, f: NodeRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            count += 1;
            let n = self.node_at(r);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: NodeRef) -> std::collections::BTreeSet<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            let n = self.node_at(r);
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars
    }

    /// Current sizes plus cumulative hit/miss and GC counters (the
    /// counters survive [`Mtbdd::collect`]; the sizes reset with it).
    /// For overlay managers the node/terminal counts cover only the
    /// private arena — the allocation attributable to this manager.
    pub fn stats(&self) -> MtbddStats {
        MtbddStats {
            nodes_created: self.nodes.len(),
            terminals_created: self.terms.len(),
            apply_cache_len: self.apply_cache.len(),
            apply_cache_hits: self.apply_cache.hits(),
            apply_cache_misses: self.apply_cache.misses(),
            apply_cache_evictions: self.apply_cache.evictions(),
            fused_cache_len: self.fused_cache.len(),
            fused_cache_hits: self.fused_cache.hits(),
            fused_cache_misses: self.fused_cache.misses(),
            fused_cache_evictions: self.fused_cache.evictions(),
            apply1_cache_hits: self.apply1_cache.hits(),
            apply1_cache_misses: self.apply1_cache.misses(),
            apply1_cache_evictions: self.apply1_cache.evictions(),
            ite_cache_hits: self.ite_cache.hits(),
            ite_cache_misses: self.ite_cache.misses(),
            ite_cache_evictions: self.ite_cache.evictions(),
            restrict_cache_hits: self.restrict_cache.hits(),
            restrict_cache_misses: self.restrict_cache.misses(),
            restrict_cache_evictions: self.restrict_cache.evictions(),
            kreduce_cache_hits: self.kreduce_cache.hits(),
            kreduce_cache_misses: self.kreduce_cache.misses(),
            kreduce_cache_evictions: self.kreduce_cache.evictions(),
            alive_cache_hits: self.alive_cache.hits(),
            alive_cache_misses: self.alive_cache.misses(),
            alive_cache_evictions: self.alive_cache.evictions(),
            unique_table_peak: self.unique_peak.max(self.nodes.len()),
            gc_runs: self.gc_runs,
            gc_reclaimed_nodes: self.gc_reclaimed,
        }
    }

    /// Inner nodes currently addressable (base plus private for
    /// overlays). Unlike the cumulative counters in [`MtbddStats`], this
    /// is a point-in-time gauge: it drops after [`Mtbdd::collect`].
    pub fn live_nodes(&self) -> usize {
        self.total_nodes()
    }

    /// Probe-length statistics of the open-addressed unique table.
    pub fn unique_probe_stats(&self) -> UniqueProbeStats {
        UniqueProbeStats {
            lookups: self.unique_lookups,
            total_steps: self.unique_probe_steps,
            max_steps: self.unique_probe_max,
            direct: self.unique_direct,
            hits: self.unique_hits,
        }
    }

    /// Load factor of the inner-node unique table (`len / capacity`, 0
    /// for an empty arena). An observability gauge: values near the
    /// open-addressed table's growth threshold (7/8) predict an imminent
    /// rebuild pause.
    pub fn unique_table_load_factor(&self) -> f64 {
        let cap = self.unique.capacity();
        if cap == 0 {
            0.0
        } else {
            self.unique.len() as f64 / cap as f64
        }
    }

    /// Estimated resident bytes of the arena: node and terminal
    /// storage plus the unique tables and operation caches, computed
    /// from *capacities* (what the allocator actually holds, not what
    /// is in use). Terminal payloads are counted shallowly — `Term`
    /// heap allocations (rational bignums) are not chased — and a
    /// shared frozen base is not counted (it belongs to the arena that
    /// was frozen), so this is a lower bound suitable for trend
    /// monitoring, not an exact RSS.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        fn map_bytes<K, V>(m: &FxHashMap<K, V>) -> usize {
            // Hashbrown stores (K, V) pairs plus one control byte each.
            m.capacity() * (size_of::<K>() + size_of::<V>() + 1)
        }
        self.nodes.capacity() * size_of::<Node>()
            + self.terms.capacity() * size_of::<Term>()
            + self.unique.capacity() * size_of::<u32>()
            + map_bytes(&self.term_ids)
            + map_bytes(&self.sum_cache)
            + self.apply_cache.heap_bytes()
            + self.apply1_cache.heap_bytes()
            + self.ite_cache.heap_bytes()
            + self.restrict_cache.heap_bytes()
            + self.kreduce_cache.heap_bytes()
            + self.fused_cache.heap_bytes()
            + self.alive_cache.heap_bytes()
    }

    /// Drops all operation caches (the unique tables are kept, so handles
    /// stay valid). Useful between verification phases to bound memory.
    /// Every resident entry is booked as an eviction in its cache's
    /// profile (see `profile.rs`).
    pub fn clear_caches(&mut self) {
        self.apply_cache.clear();
        self.apply1_cache.clear();
        self.ite_cache.clear();
        self.restrict_cache.clear();
        self.kreduce_cache.clear();
        self.fused_cache.clear();
        self.sum_cache.clear();
        self.alive_cache.clear();
    }

    // ---- crate-internal access for the invariant auditor (audit.rs) ----

    /// Probes the unique tables for `n` without booking stats (audit
    /// re-validation of the table invariant).
    pub(crate) fn unique_lookup_for_audit(&self, n: &Node) -> Option<NodeRef> {
        let hash = hash_node(n);
        if let Some(base) = &self.base {
            let p = base.unique.probe(hash, |ix| base.nodes[ix as usize] == *n);
            if let Some(ix) = p.found {
                return Some(NodeRef::inner(ix as usize));
            }
        }
        let p = self
            .unique
            .probe(hash, |ix| self.nodes[ix as usize - self.base_nodes] == *n);
        p.found.map(|ix| NodeRef::inner(ix as usize))
    }

    pub(crate) fn unique_table_len(&self) -> usize {
        self.unique.len()
    }

    pub(crate) fn raw_nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub(crate) fn raw_terms(&self) -> &[Term] {
        &self.terms
    }

    pub(crate) fn term_table(&self) -> &FxHashMap<Term, NodeRef> {
        &self.term_ids
    }

    pub(crate) fn audit_on(&self) -> bool {
        self.audit_enabled
    }

    // ---- crate-internal access for the profiler (profile.rs) ----

    pub(crate) fn profile_on(&self) -> bool {
        self.profile_enabled
    }

    /// Depth bookkeeping for the fused kernel's memoized recursion
    /// (called from `fused.rs` on the cache-miss path only).
    pub(crate) fn prof_fused_enter(&mut self) {
        if self.profile_enabled {
            self.prof_fused_depth += 1;
            self.prof_fused_depth_max = self.prof_fused_depth_max.max(self.prof_fused_depth);
        }
    }

    pub(crate) fn prof_fused_exit(&mut self) {
        if self.profile_enabled {
            self.prof_fused_depth -= 1;
        }
    }

    /// Depth bookkeeping for `KREDUCE` (called from `kreduce.rs` on the
    /// cache-miss path only).
    pub(crate) fn prof_kreduce_enter(&mut self) {
        if self.profile_enabled {
            self.prof_kreduce_depth += 1;
            self.prof_kreduce_depth_max = self.prof_kreduce_depth_max.max(self.prof_kreduce_depth);
        }
    }

    pub(crate) fn prof_kreduce_exit(&mut self) {
        if self.profile_enabled {
            self.prof_kreduce_depth -= 1;
        }
    }

    pub(crate) fn audit_ops_bump(&mut self) -> u64 {
        self.audit_ops += 1;
        self.audit_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Mtbdd, Var, Var, Var) {
        let mut m = Mtbdd::new();
        let x1 = m.fresh_var();
        let x2 = m.fresh_var();
        let x3 = m.fresh_var();
        (m, x1, x2, x3)
    }

    #[test]
    fn hash_consing_gives_pointer_equality() {
        let (mut m, x1, _, _) = setup();
        let a = m.var_guard(x1);
        let b = m.var_guard(x1);
        assert_eq!(a, b);
        let na = m.not(a);
        let nb = m.nvar_guard(x1);
        assert_eq!(na, nb);
    }

    #[test]
    fn node_elides_redundant_tests() {
        let (mut m, x1, _, _) = setup();
        let c = m.one();
        let r = m.node(x1, c, c);
        assert_eq!(r, c);
    }

    #[test]
    fn add_and_mul_match_pointwise_eval() {
        let (mut m, x1, x2, _) = setup();
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let half = m.constant(Ratio::new(1, 2));
        let f = m.mul(g1, half); // x1/2
        let s = m.add(f, g2); // x1/2 + x2
        for (a1, a2) in [(false, false), (false, true), (true, false), (true, true)] {
            let expect = (a1 as i64, a2 as i64);
            let want = Ratio::new(expect.0 as i128, 2) + Ratio::int(expect.1);
            let got = m.eval(s, |v| if v == x1 { a1 } else { a2 });
            assert_eq!(got, Term::Num(want), "assignment {a1}/{a2}");
        }
    }

    #[test]
    fn or_and_not_are_boolean() {
        let (mut m, x1, x2, _) = setup();
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let disj = m.or(g1, g2);
        let conj = m.and(g1, g2);
        let neg = m.not(g1);
        for (a1, a2) in [(false, false), (false, true), (true, false), (true, true)] {
            let ev = |f| m.eval(f, |v| if v == x1 { a1 } else { a2 }).is_one();
            assert_eq!(ev(disj), a1 || a2);
            assert_eq!(ev(conj), a1 && a2);
            assert_eq!(ev(neg), !a1);
        }
    }

    #[test]
    fn ite_selects_branches() {
        let (mut m, x1, _, _) = setup();
        let c = m.var_guard(x1);
        let five = m.constant(Ratio::int(5));
        let inf = m.pos_inf();
        let f = m.ite(c, five, inf);
        assert_eq!(m.eval(f, |_| true), Term::int(5));
        assert_eq!(m.eval(f, |_| false), Term::PosInf);
    }

    #[test]
    fn min_with_infinity() {
        let (mut m, x1, _, _) = setup();
        let c = m.var_guard(x1);
        let ten = m.constant(Ratio::int(10));
        let inf = m.pos_inf();
        let d1 = m.ite(c, ten, inf);
        let twenty = m.constant(Ratio::int(20));
        let best = m.apply(Op::Min, d1, twenty);
        assert_eq!(m.eval(best, |_| true), Term::int(10));
        assert_eq!(m.eval(best, |_| false), Term::int(20));
    }

    #[test]
    fn eq_and_lt_guards() {
        let (mut m, x1, _, _) = setup();
        let c = m.var_guard(x1);
        let ten = m.constant(Ratio::int(10));
        let inf = m.pos_inf();
        let d = m.ite(c, ten, inf);
        let eq = m.eq_guard(d, ten);
        assert_eq!(m.eval(eq, |_| true), Term::ONE);
        assert_eq!(m.eval(eq, |_| false), Term::ZERO);
        let lt = m.lt_guard(ten, d);
        assert_eq!(m.eval(lt, |_| false), Term::ONE); // 10 < inf
        assert_eq!(m.eval(lt, |_| true), Term::ZERO);
        let fin = m.is_finite_guard(d);
        assert_eq!(m.eval(fin, |_| false), Term::ZERO);
    }

    #[test]
    fn division_zero_over_zero() {
        let (mut m, x1, _, _) = setup();
        let s = m.var_guard(x1); // selected iff alive
        let total = s; // only rule
        let c = m.apply(Op::Div, s, total);
        // Alive: 1/1 = 1. Failed: 0/0 = 0.
        assert_eq!(m.eval(c, |_| true), Term::ONE);
        assert_eq!(m.eval(c, |_| false), Term::ZERO);
    }

    #[test]
    fn restrict_fixes_variables() {
        let (mut m, x1, x2, _) = setup();
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let s = m.add(g1, g2);
        let r1 = m.restrict(s, x1, true);
        assert_eq!(m.eval(r1, |_| false), Term::ONE);
        let r0 = m.restrict(s, x1, false);
        assert_eq!(m.eval(r0, |_| false), Term::ZERO);
    }

    #[test]
    fn sum_balanced() {
        let (mut m, x1, x2, x3) = setup();
        let gs: Vec<_> = [x1, x2, x3].iter().map(|&v| m.var_guard(v)).collect();
        let s = m.sum(&gs);
        assert_eq!(m.eval_all_alive(s), Term::int(3));
        assert_eq!(m.eval(s, |v| v == x2), Term::int(1));
        assert_eq!(m.sum(&[]), m.zero());
    }

    #[test]
    fn merge_sums_counters_and_maxes_sizes() {
        let mut a = MtbddStats {
            nodes_created: 10,
            terminals_created: 2,
            apply_cache_len: 100,
            apply_cache_hits: 5,
            apply_cache_misses: 7,
            apply_cache_evictions: 11,
            fused_cache_len: 50,
            fused_cache_hits: 4,
            fused_cache_misses: 6,
            fused_cache_evictions: 1,
            apply1_cache_hits: 9,
            ite_cache_misses: 8,
            restrict_cache_evictions: 2,
            kreduce_cache_hits: 13,
            unique_table_peak: 40,
            gc_runs: 1,
            gc_reclaimed_nodes: 30,
            ..Default::default()
        };
        let b = MtbddStats {
            nodes_created: 3,
            terminals_created: 1,
            apply_cache_len: 60,
            apply_cache_hits: 2,
            apply_cache_misses: 3,
            apply_cache_evictions: 1,
            fused_cache_len: 80,
            fused_cache_hits: 1,
            fused_cache_misses: 2,
            fused_cache_evictions: 3,
            apply1_cache_hits: 1,
            ite_cache_misses: 2,
            restrict_cache_evictions: 3,
            kreduce_cache_hits: 4,
            unique_table_peak: 90,
            gc_runs: 2,
            gc_reclaimed_nodes: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nodes_created, 13);
        assert_eq!(a.terminals_created, 3);
        assert_eq!(a.apply_cache_len, 100, "cache len is a size: take max");
        assert_eq!(a.apply_cache_hits, 7);
        assert_eq!(a.apply_cache_misses, 10);
        assert_eq!(a.apply_cache_evictions, 12);
        assert_eq!(a.fused_cache_len, 80, "cache len is a size: take max");
        assert_eq!(a.fused_cache_hits, 5);
        assert_eq!(a.fused_cache_misses, 8);
        assert_eq!(a.fused_cache_evictions, 4);
        assert_eq!(a.apply1_cache_hits, 10);
        assert_eq!(a.ite_cache_misses, 10);
        assert_eq!(a.restrict_cache_evictions, 5);
        assert_eq!(a.kreduce_cache_hits, 17);
        assert_eq!(a.unique_table_peak, 90, "peak is a size: take max");
        assert_eq!(a.gc_runs, 3);
        assert_eq!(a.gc_reclaimed_nodes, 34);
    }

    #[test]
    fn op_indices_roundtrip() {
        for op in [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Min,
            Op::Max,
            Op::Or,
            Op::And,
            Op::EqGuard,
            Op::LtGuard,
        ] {
            assert_eq!(Op::from_index(op as u8), op);
        }
        for op in [Op1::IsFiniteGuard, Op1::Not, Op1::Neg] {
            assert_eq!(Op1::from_index(op as u8), op);
        }
    }

    #[test]
    fn unique_probe_stats_track_lookups() {
        let (mut m, x1, x2, _) = setup();
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let _ = m.add(g1, g2);
        assert_eq!(m.var_guard(x1), g1, "re-created guard must hash-cons");
        let s = m.unique_probe_stats();
        assert!(s.lookups > 0);
        assert!(s.hits > 0, "re-creating var guards must hash-cons");
        assert!(s.direct <= s.lookups);
        assert!(s.mean() >= 0.0);
        // Deterministic: an identical build sequence books identical stats.
        let (mut n, y1, y2, _) = setup();
        let h1 = n.var_guard(y1);
        let h2 = n.var_guard(y2);
        let _ = n.add(h1, h2);
        let _ = n.var_guard(y1);
        assert_eq!(n.unique_probe_stats(), s);
    }

    #[test]
    fn frozen_overlay_shares_base_nodes() {
        let (mut m, x1, x2, _) = setup();
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let s = m.add(g1, g2);
        let base_nodes = m.live_nodes();
        let frozen = m.freeze();
        assert_eq!(frozen.live_nodes(), base_nodes);

        let mut w = Mtbdd::with_base(&frozen);
        // Base handles are valid, same bits, in the overlay.
        assert_eq!(w.eval_all_alive(s), Term::int(2));
        assert_eq!(w.zero(), m.zero());
        // Re-creating a base node returns the base handle, allocating
        // nothing privately.
        let g1w = w.var_guard(x1);
        assert_eq!(g1w, g1);
        let sw = w.add(g1, g2);
        assert_eq!(sw, s, "base-resident results hash-cons into the base");
        assert_eq!(w.stats().nodes_created, 0, "no private allocation yet");
        // New structure lands in the private overlay, above the partition.
        let third = w.constant(Ratio::new(1, 3));
        let t = w.mul(g1, third);
        let priv_sum = w.add(t, g2);
        assert!(!priv_sum.is_terminal());
        assert!(priv_sum.index() >= base_nodes);
        assert!(w.stats().nodes_created > 0);
        assert_eq!(w.eval(priv_sum, |v| v == x1), Term::Num(Ratio::new(1, 3)));
        // Two overlays over one base agree bit-for-bit.
        let mut w2 = Mtbdd::with_base(&frozen);
        let t2 = {
            let third = w2.constant(Ratio::new(1, 3));
            let t2 = w2.mul(g1, third);
            w2.add(t2, g2)
        };
        assert_eq!(t2, priv_sum);
        // The base manager is untouched.
        assert_eq!(m.live_nodes(), base_nodes);
    }

    #[test]
    fn frozen_mtbdd_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenMtbdd>();
    }

    #[test]
    fn apply_cache_hit_and_miss_counters() {
        let (mut m, x1, x2, _) = setup();
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        assert_eq!(m.stats().apply_cache_hits, 0);
        assert_eq!(m.stats().apply_cache_hit_rate(), None);
        let s1 = m.add(g1, g2);
        let first = m.stats();
        assert!(first.apply_cache_misses > 0);
        let s2 = m.add(g1, g2);
        assert_eq!(s1, s2);
        let second = m.stats();
        assert_eq!(second.apply_cache_hits, first.apply_cache_hits + 1);
        assert_eq!(second.apply_cache_misses, first.apply_cache_misses);
        assert!(second.apply_cache_hit_rate().unwrap() > 0.0);
    }

    #[test]
    fn commutative_apply_cache_canonicalizes_operand_order() {
        // `add(f, g)` and `add(g, f)` must share one cache entry: the
        // swapped application is a pure hit (no new memoized recursions),
        // so the hit rate strictly improves.
        let (mut m, x1, x2, x3) = setup();
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let g3 = m.var_guard(x3);
        let half = m.constant(Ratio::new(1, 2));
        let f = m.mul(g1, half); // inner, != g
        let g = m.add(g2, g3); // inner, != f
        let before = m.stats();
        let r1 = m.add(f, g);
        let mid = m.stats();
        assert!(mid.apply_cache_misses > before.apply_cache_misses);
        let r2 = m.add(g, f);
        let after = m.stats();
        assert_eq!(r1, r2, "addition is commutative");
        assert_eq!(
            after.apply_cache_misses, mid.apply_cache_misses,
            "swapped operands must not re-recurse"
        );
        assert_eq!(
            after.apply_cache_hits,
            mid.apply_cache_hits + 1,
            "swapped operands are one canonical cache hit"
        );
        assert!(
            after.apply_cache_hit_rate().unwrap() > mid.apply_cache_hit_rate().unwrap(),
            "hit rate must improve on the symmetric application"
        );
        // Non-commutative operations stay order-sensitive.
        let s1 = m.apply(Op::Sub, f, g);
        let s2 = m.apply(Op::Sub, g, f);
        assert_ne!(s1, s2);
    }

    #[test]
    fn support_and_node_count() {
        let (mut m, x1, _, x3) = setup();
        let g1 = m.var_guard(x1);
        let g3 = m.var_guard(x3);
        let f = m.add(g1, g3);
        let sup = m.support(f);
        assert!(sup.contains(&x1) && sup.contains(&x3) && sup.len() == 2);
        assert!(m.node_count(f) >= 2);
        assert_eq!(m.node_count(m.zero()), 0);
    }
}
