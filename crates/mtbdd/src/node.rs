//! Node references and the internal node representation.

use serde::{Deserialize, Serialize};

/// Index of a boolean failure variable. Variable 0 is the topmost level;
/// the variable order is fixed at allocation time.
pub type Var = u32;

const TERM_BIT: u32 = 1 << 31;

/// A reference to an MTBDD node (inner node or terminal) inside one
/// [`Mtbdd`](crate::Mtbdd) manager.
///
/// Because nodes are hash-consed, two `NodeRef`s from the *same* manager are
/// equal if and only if they denote the same pseudo-boolean function. A
/// `NodeRef` is meaningless in any other manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeRef(pub(crate) u32);

impl NodeRef {
    pub(crate) fn inner(ix: usize) -> NodeRef {
        let ix = u32::try_from(ix).expect("MTBDD node table overflow");
        assert!(ix & TERM_BIT == 0, "MTBDD node table overflow");
        NodeRef(ix)
    }

    pub(crate) fn terminal(ix: usize) -> NodeRef {
        let ix = u32::try_from(ix).expect("MTBDD terminal table overflow");
        assert!(ix & TERM_BIT == 0, "MTBDD terminal table overflow");
        NodeRef(ix | TERM_BIT)
    }

    /// Whether this reference denotes a terminal (constant) node.
    pub fn is_terminal(&self) -> bool {
        self.0 & TERM_BIT != 0
    }

    pub(crate) fn index(&self) -> usize {
        (self.0 & !TERM_BIT) as usize
    }
}

/// An inner decision node: `var == 0` follows `lo`, `var == 1` follows `hi`.
///
/// By the failure-variable convention, `hi` is the "element alive" branch and
/// `lo` the "element failed" branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: Var,
    pub lo: NodeRef,
    pub hi: NodeRef,
}
