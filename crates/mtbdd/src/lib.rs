//! # yu-mtbdd
//!
//! Multi-terminal binary decision diagrams (MTBDDs) specialized for
//! k-failure network verification, as used by the YU system (SIGCOMM 2024,
//! "A General and Efficient Approach to Verifying Traffic Load Properties
//! under Arbitrary k Failures").
//!
//! An MTBDD here represents a *pseudo-boolean function* `{0,1}ⁿ → ℚ ∪ {+∞}`
//! mapping a failure scenario (one boolean per link/router; `1` = alive) to
//! a number: a traffic fraction, a traffic load, or an IGP distance. The
//! crate provides:
//!
//! * a hash-consing [`Mtbdd`] manager where function equality is pointer
//!   equality of [`NodeRef`]s;
//! * exact rational terminals ([`Ratio`]/[`Term`]) so ECMP fractions like
//!   `1/3` sum exactly;
//! * the generic memoized [`Mtbdd::apply`] (add, sub, mul, div with the
//!   `0/0 = 0` ECMP convention, min, max, boolean and comparison guards),
//!   [`Mtbdd::ite`], restriction and evaluation;
//! * [`Mtbdd::kreduce`] — the paper's novel k-failure-equivalence reduction
//!   (§5.2) that keeps diagrams `O(n^k)`-shaped instead of `O(2ⁿ)`;
//! * path/terminal enumeration for Theorem 5.1-style verification and
//!   counterexample extraction.
//!
//! ## Example
//!
//! ```
//! use yu_mtbdd::{Mtbdd, Term};
//!
//! let mut m = Mtbdd::new();
//! let x1 = m.fresh_var(); // link A-C
//! let x2 = m.fresh_var(); // link B-C
//!
//! // Traffic load = 60*x1 + 40*x2 (each link carries its flow when alive).
//! let g1 = m.var_guard(x1);
//! let g2 = m.var_guard(x2);
//! let l1 = m.scale(g1, Term::int(60));
//! let l2 = m.scale(g2, Term::int(40));
//! let load = m.add(l1, l2);
//!
//! // Verify "load stays >= 50 under any single failure".
//! let reduced = m.kreduce(load, 1);
//! let violation = m.find_path(reduced, |t| t < Term::int(50));
//! assert!(violation.is_some()); // failing x1 leaves only 40
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod bigint;
mod dot;
mod fused;
mod gc;
pub mod hasher;
mod import;
mod kreduce;
mod manager;
mod node;
mod paths;
pub mod profile;
mod ratio;
#[doc(hidden)]
pub mod table;
mod terminal;

pub use audit::{audit_enabled, AuditCheck, AuditReport, AuditViolation};
pub use gc::Remap;
pub use import::ImportMemo;
pub use manager::{FrozenMtbdd, Mtbdd, MtbddStats, Op, Op1, UniqueProbeStats};
pub use node::{NodeRef, Var};
pub use paths::Path;
pub use profile::{
    engine_profile_enabled, set_engine_profile, CacheProfile, EngineProfile, LevelCount,
    LevelProfile, ProbeStats,
};
pub use ratio::Ratio;
pub use terminal::Term;
