//! Path and terminal enumeration: the machinery behind Theorem 5.1's
//! verification step ("checking the values of all terminal nodes") and
//! counterexample extraction.

use crate::manager::Mtbdd;
use crate::node::{NodeRef, Var};
use crate::terminal::Term;

/// A partial assignment along one root-to-terminal path. Variables not
/// mentioned are don't-cares (for failure scenarios: assumed alive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// `(variable, value)` pairs in root-to-leaf order.
    pub assignment: Vec<(Var, bool)>,
    /// The terminal value reached.
    pub value: Term,
}

impl Path {
    /// The failed elements along this path (variables assigned `false`).
    pub fn failed_vars(&self) -> Vec<Var> {
        self.assignment
            .iter()
            .filter(|(_, alive)| !alive)
            .map(|(v, _)| *v)
            .collect()
    }
}

impl Mtbdd {
    /// All distinct terminal values reachable from `f`.
    pub fn terminals(&self, f: NodeRef) -> Vec<Term> {
        let mut seen = std::collections::HashSet::new();
        let mut out = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            if r.is_terminal() {
                out.insert(self.terminal_value(r));
            } else {
                let n = self.node_at(r);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        out.into_iter().collect()
    }

    /// The minimum and maximum terminal values reachable from `f`.
    pub fn terminal_range(&self, f: NodeRef) -> (Term, Term) {
        let ts = self.terminals(f);
        (
            ts.first().expect("MTBDD has at least one terminal").clone(),
            ts.last().expect("MTBDD has at least one terminal").clone(),
        )
    }

    /// Depth-first search for a path to a terminal satisfying `pred`,
    /// preferring paths with few failures (hi edges first), which yields
    /// minimal-looking counterexamples.
    pub fn find_path(&self, f: NodeRef, pred: impl Fn(Term) -> bool) -> Option<Path> {
        // Pre-compute which nodes can reach a satisfying terminal.
        let mut can_reach = std::collections::HashMap::new();
        fn mark(
            m: &Mtbdd,
            f: NodeRef,
            pred: &impl Fn(Term) -> bool,
            memo: &mut std::collections::HashMap<NodeRef, bool>,
        ) -> bool {
            if let Some(&v) = memo.get(&f) {
                return v;
            }
            let v = if f.is_terminal() {
                pred(m.terminal_value(f))
            } else {
                let n = m.node_at(f);
                // Evaluate both branches (no short-circuit) so the memo is
                // complete for the descent below.
                let hi = mark(m, n.hi, pred, memo);
                let lo = mark(m, n.lo, pred, memo);
                hi || lo
            };
            memo.insert(f, v);
            v
        }
        if !mark(self, f, &pred, &mut can_reach) {
            return None;
        }
        let mut assignment = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node_at(cur);
            if can_reach[&n.hi] {
                assignment.push((n.var, true));
                cur = n.hi;
            } else {
                assignment.push((n.var, false));
                cur = n.lo;
            }
        }
        Some(Path {
            assignment,
            value: self.terminal_value(cur),
        })
    }

    /// All root-to-terminal paths of `f` (exponential in the worst case;
    /// intended for tests and small diagrams).
    pub fn all_paths(&self, f: NodeRef) -> Vec<Path> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.walk_paths(f, &mut prefix, &mut out);
        out
    }

    fn walk_paths(&self, f: NodeRef, prefix: &mut Vec<(Var, bool)>, out: &mut Vec<Path>) {
        if f.is_terminal() {
            out.push(Path {
                assignment: prefix.clone(),
                value: self.terminal_value(f),
            });
            return;
        }
        let n = self.node_at(f);
        prefix.push((n.var, false));
        self.walk_paths(n.lo, prefix, out);
        prefix.pop();
        prefix.push((n.var, true));
        self.walk_paths(n.hi, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ratio;

    #[test]
    fn terminals_and_range() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let s40 = m.scale(g1, Term::int(40));
        let s60 = m.scale(g2, Term::int(60));
        let f = m.add(s40, s60);
        assert_eq!(
            m.terminals(f),
            vec![Term::int(0), Term::int(40), Term::int(60), Term::int(100)]
        );
        assert_eq!(m.terminal_range(f), (Term::int(0), Term::int(100)));
    }

    #[test]
    fn find_path_prefers_fewer_failures() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        // load = 100 when x1 failed, else 50 + 50*x2
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let t100 = m.constant(Ratio::int(100));
        let s50 = m.scale(g2, Term::int(50));
        let fifty = m.constant(Ratio::int(50));
        let alive_val = m.add(fifty, s50);
        let f = m.ite(g1, alive_val, t100);
        // Looking for >= 95: reachable both via x1 failure (100) and via
        // all-alive (100). The all-alive path must be preferred.
        let p = m.find_path(f, |t| t >= Term::int(95)).unwrap();
        assert!(p.failed_vars().is_empty(), "expected no failures: {p:?}");
        assert_eq!(p.value, Term::int(100));
        // Looking for < 60 requires x2 failed.
        let p = m.find_path(f, |t| t < Term::int(60)).unwrap();
        assert_eq!(p.failed_vars(), vec![x2]);
        // Nothing below 0.
        assert!(m.find_path(f, |t| t < Term::ZERO).is_none());
    }

    #[test]
    fn all_paths_cover_the_function() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let f = m.add(g1, g2);
        let paths = m.all_paths(f);
        // Each path's assignment must evaluate to its recorded value.
        for p in &paths {
            let val = m.eval(f, |v| {
                p.assignment
                    .iter()
                    .find(|(pv, _)| *pv == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(true)
            });
            assert_eq!(val, p.value);
        }
        assert!(paths.len() >= 3);
    }
}
