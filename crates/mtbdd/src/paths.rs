//! Path and terminal enumeration: the machinery behind Theorem 5.1's
//! verification step ("checking the values of all terminal nodes") and
//! counterexample extraction.

use crate::manager::Mtbdd;
use crate::node::{NodeRef, Var};
use crate::terminal::Term;

/// A partial assignment along one root-to-terminal path. Variables not
/// mentioned are don't-cares (for failure scenarios: assumed alive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// `(variable, value)` pairs in root-to-leaf order.
    pub assignment: Vec<(Var, bool)>,
    /// The terminal value reached.
    pub value: Term,
}

impl Path {
    /// The failed elements along this path (variables assigned `false`).
    pub fn failed_vars(&self) -> Vec<Var> {
        self.assignment
            .iter()
            .filter(|(_, alive)| !alive)
            .map(|(v, _)| *v)
            .collect()
    }
}

impl Mtbdd {
    /// All distinct terminal values reachable from `f`.
    pub fn terminals(&self, f: NodeRef) -> Vec<Term> {
        let mut seen = std::collections::HashSet::new();
        let mut out = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            if r.is_terminal() {
                out.insert(self.terminal_value(r));
            } else {
                let n = self.node_at(r);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        out.into_iter().collect()
    }

    /// The minimum and maximum terminal values reachable from `f`.
    pub fn terminal_range(&self, f: NodeRef) -> (Term, Term) {
        let ts = self.terminals(f);
        (
            ts.first().expect("MTBDD has at least one terminal").clone(),
            ts.last().expect("MTBDD has at least one terminal").clone(),
        )
    }

    /// Depth-first search for a path to a terminal satisfying `pred`,
    /// preferring paths with few failures (hi edges first), which yields
    /// minimal-looking counterexamples.
    pub fn find_path(&self, f: NodeRef, pred: impl Fn(Term) -> bool) -> Option<Path> {
        // Pre-compute which nodes can reach a satisfying terminal.
        let mut can_reach = std::collections::HashMap::new();
        fn mark(
            m: &Mtbdd,
            f: NodeRef,
            pred: &impl Fn(Term) -> bool,
            memo: &mut std::collections::HashMap<NodeRef, bool>,
        ) -> bool {
            if let Some(&v) = memo.get(&f) {
                return v;
            }
            let v = if f.is_terminal() {
                pred(m.terminal_value(f))
            } else {
                let n = m.node_at(f);
                // Evaluate both branches (no short-circuit) so the memo is
                // complete for the descent below.
                let hi = mark(m, n.hi, pred, memo);
                let lo = mark(m, n.lo, pred, memo);
                hi || lo
            };
            memo.insert(f, v);
            v
        }
        if !mark(self, f, &pred, &mut can_reach) {
            return None;
        }
        let mut assignment = Vec::new();
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.node_at(cur);
            if can_reach[&n.hi] {
                assignment.push((n.var, true));
                cur = n.hi;
            } else {
                assignment.push((n.var, false));
                cur = n.lo;
            }
        }
        Some(Path {
            assignment,
            value: self.terminal_value(cur),
        })
    }

    /// All root-to-terminal paths of `f` (exponential in the worst case;
    /// intended for tests and small diagrams).
    pub fn all_paths(&self, f: NodeRef) -> Vec<Path> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.walk_paths(f, &mut prefix, &mut out);
        out
    }

    /// Counts the complete assignments over variables `0..num_vars` with
    /// at most `budget` variables set to 0 (failed) that reach a terminal
    /// satisfying `pred` — i.e. the number of distinct `≤ budget`-failure
    /// scenarios on which the diagram takes a matching value. Variables a
    /// path skips (don't-cares) are expanded combinatorially, not counted
    /// as single paths, so the result is a scenario count, not a path
    /// count. Saturates at `u128::MAX`.
    pub fn count_scenarios(
        &self,
        f: NodeRef,
        num_vars: Var,
        budget: u32,
        pred: impl Fn(Term) -> bool,
    ) -> u128 {
        let mut memo: std::collections::HashMap<(NodeRef, u32), u128> =
            std::collections::HashMap::new();
        self.count_from(f, 0, num_vars, budget, &pred, &mut memo)
    }

    /// Scenario count from `level` with `budget` failures remaining;
    /// memoized per `(node, budget)` (the free-variable prefix between
    /// `level` and the node's own variable is handled combinatorially
    /// before the memo lookup, so the memo key needs no level).
    fn count_from(
        &self,
        f: NodeRef,
        level: Var,
        num_vars: Var,
        budget: u32,
        pred: &impl Fn(Term) -> bool,
        memo: &mut std::collections::HashMap<(NodeRef, u32), u128>,
    ) -> u128 {
        if f.is_terminal() {
            if !pred(self.terminal_value(f)) {
                return 0;
            }
            return scenarios_over_free(num_vars.saturating_sub(level), budget);
        }
        let n = self.node_at(f);
        debug_assert!(n.var >= level && n.var < num_vars);
        // Free variables between `level` and the node: choose j of them
        // to fail, spending j of the budget before entering the node.
        let gap = n.var - level;
        let mut total: u128 = 0;
        for j in 0..=gap.min(budget) {
            let ways = binomial(gap, j);
            if ways == 0 {
                continue;
            }
            let rest = budget - j;
            let at_node = if let Some(&v) = memo.get(&(f, rest)) {
                v
            } else {
                let hi = self.count_from(n.hi, n.var + 1, num_vars, rest, pred, memo);
                let lo = if rest > 0 {
                    self.count_from(n.lo, n.var + 1, num_vars, rest - 1, pred, memo)
                } else {
                    0
                };
                let v = hi.saturating_add(lo);
                memo.insert((f, rest), v);
                v
            };
            total = total.saturating_add(ways.saturating_mul(at_node));
        }
        total
    }

    fn walk_paths(&self, f: NodeRef, prefix: &mut Vec<(Var, bool)>, out: &mut Vec<Path>) {
        if f.is_terminal() {
            out.push(Path {
                assignment: prefix.clone(),
                value: self.terminal_value(f),
            });
            return;
        }
        let n = self.node_at(f);
        prefix.push((n.var, false));
        self.walk_paths(n.lo, prefix, out);
        prefix.pop();
        prefix.push((n.var, true));
        self.walk_paths(n.hi, prefix, out);
        prefix.pop();
    }
}

/// The number of `≤ budget`-failure assignments of `free` unconstrained
/// variables: `Σ_{j≤budget} C(free, j)`, saturating.
fn scenarios_over_free(free: Var, budget: u32) -> u128 {
    let mut total: u128 = 0;
    for j in 0..=budget.min(free) {
        total = total.saturating_add(binomial(free, j));
    }
    total
}

/// Binomial coefficient `C(n, k)`, saturating at `u128::MAX`.
fn binomial(n: u32, k: u32) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut c: u128 = 1;
    for i in 0..k {
        c = match c.checked_mul((n - i) as u128) {
            Some(v) => v / (i + 1) as u128,
            None => return u128::MAX,
        };
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ratio;

    #[test]
    fn terminals_and_range() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let s40 = m.scale(g1, Term::int(40));
        let s60 = m.scale(g2, Term::int(60));
        let f = m.add(s40, s60);
        assert_eq!(
            m.terminals(f),
            vec![Term::int(0), Term::int(40), Term::int(60), Term::int(100)]
        );
        assert_eq!(m.terminal_range(f), (Term::int(0), Term::int(100)));
    }

    #[test]
    fn find_path_prefers_fewer_failures() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        // load = 100 when x1 failed, else 50 + 50*x2
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let t100 = m.constant(Ratio::int(100));
        let s50 = m.scale(g2, Term::int(50));
        let fifty = m.constant(Ratio::int(50));
        let alive_val = m.add(fifty, s50);
        let f = m.ite(g1, alive_val, t100);
        // Looking for >= 95: reachable both via x1 failure (100) and via
        // all-alive (100). The all-alive path must be preferred.
        let p = m.find_path(f, |t| t >= Term::int(95)).unwrap();
        assert!(p.failed_vars().is_empty(), "expected no failures: {p:?}");
        assert_eq!(p.value, Term::int(100));
        // Looking for < 60 requires x2 failed.
        let p = m.find_path(f, |t| t < Term::int(60)).unwrap();
        assert_eq!(p.failed_vars(), vec![x2]);
        // Nothing below 0.
        assert!(m.find_path(f, |t| t < Term::ZERO).is_none());
    }

    #[test]
    fn count_scenarios_matches_brute_force() {
        let mut m = Mtbdd::new();
        let vars: Vec<_> = (0..4).map(|_| m.fresh_var()).collect();
        // load = 50 + 30·(x1 failed) + 30·(x3 failed)
        let n1 = m.nvar_guard(vars[1]);
        let n3 = m.nvar_guard(vars[3]);
        let e1 = m.scale(n1, Term::int(30));
        let e3 = m.scale(n3, Term::int(30));
        let base = m.constant(Ratio::int(50));
        let t = m.add(base, e1);
        let f = m.add(t, e3);
        for budget in 0..=4u32 {
            // Brute force over all 2^4 assignments within the budget.
            let mut want = 0u128;
            for bits in 0..16u32 {
                let failed = (0..4).filter(|i| bits & (1 << i) != 0).count() as u32;
                if failed > budget {
                    continue;
                }
                let val = m.eval(f, |v| bits & (1 << v) == 0);
                if val > Term::int(60) {
                    want += 1;
                }
            }
            let got = m.count_scenarios(f, 4, budget, |t| t > Term::int(60));
            assert_eq!(got, want, "budget {budget}");
        }
        // A terminal-only diagram counts every scenario in budget.
        let c = m.constant(Ratio::int(99));
        assert_eq!(m.count_scenarios(c, 4, 1, |t| t > Term::ZERO), 5); // C(4,0)+C(4,1)
        assert_eq!(m.count_scenarios(c, 4, 1, |t| t > Term::int(100)), 0);
    }

    #[test]
    fn all_paths_cover_the_function() {
        let mut m = Mtbdd::new();
        let (x1, x2) = (m.fresh_var(), m.fresh_var());
        let g1 = m.var_guard(x1);
        let g2 = m.var_guard(x2);
        let f = m.add(g1, g2);
        let paths = m.all_paths(f);
        // Each path's assignment must evaluate to its recorded value.
        for p in &paths {
            let val = m.eval(f, |v| {
                p.assignment
                    .iter()
                    .find(|(pv, _)| *pv == v)
                    .map(|(_, b)| *b)
                    .unwrap_or(true)
            });
            assert_eq!(val, p.value);
        }
        assert!(paths.len() >= 3);
    }
}
