//! Terminal values of MTBDDs.
//!
//! A terminal is either a finite rational (a traffic fraction, a traffic
//! load in Gbps, an IGP distance, or a 0/1 boolean) or `+∞`, which the
//! symbolic IGP uses as the distance of unreachable routers. Arithmetic on
//! `+∞` follows the conventions needed by guarded Bellman–Ford and by the
//! ITE-style compositions in symbolic traffic execution:
//!
//! * `∞ + x = ∞`, `min(∞, x) = x`, `max(∞, x) = ∞`
//! * `0 · ∞ = 0` (so that `guard · value` annihilates under a false guard)
//! * comparisons treat `∞` as larger than every finite value.

// The checked `add`/`sub`/`mul`/`div` below intentionally shadow the
// operator names: they are the Op::combine entry points and must stay
// ordinary methods (operator traits would hide the ∞ conventions).
#![allow(clippy::should_implement_trait)]

use crate::ratio::Ratio;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A terminal value: a finite exact rational or positive infinity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A finite exact rational value.
    Num(Ratio),
    /// Positive infinity (the distance of an unreachable router).
    PosInf,
}

impl Term {
    /// The terminal 0.
    pub const ZERO: Term = Term::Num(Ratio::ZERO);
    /// The terminal 1.
    pub const ONE: Term = Term::Num(Ratio::ONE);

    /// The integer `n` as a finite terminal.
    pub fn int(n: i64) -> Term {
        Term::Num(Ratio::int(n))
    }

    /// The rational `num/den` as a finite terminal.
    pub fn ratio(num: i128, den: i128) -> Term {
        Term::Num(Ratio::new(num, den))
    }

    /// Whether the terminal is the finite value 0.
    pub fn is_zero(&self) -> bool {
        matches!(self, Term::Num(r) if r.is_zero())
    }

    /// Whether the terminal is the finite value 1.
    pub fn is_one(&self) -> bool {
        matches!(self, Term::Num(r) if r.is_one())
    }

    /// Whether the terminal is finite (not `+inf`).
    pub fn is_finite(&self) -> bool {
        matches!(self, Term::Num(_))
    }

    /// The finite value, if any.
    pub fn finite(&self) -> Option<Ratio> {
        match self {
            Term::Num(r) => Some(r.clone()),
            Term::PosInf => None,
        }
    }

    /// Lossy conversion for reporting; `+∞` maps to `f64::INFINITY`.
    pub fn to_f64(&self) -> f64 {
        match self {
            Term::Num(r) => r.to_f64(),
            Term::PosInf => f64::INFINITY,
        }
    }

    /// Addition; `inf + x = inf`.
    pub fn add(self, rhs: Term) -> Term {
        match (self, rhs) {
            (Term::Num(a), Term::Num(b)) => Term::Num(a + b),
            _ => Term::PosInf,
        }
    }

    /// Subtraction; defined when the right operand is finite.
    pub fn sub(self, rhs: Term) -> Term {
        match (self, rhs) {
            (Term::Num(a), Term::Num(b)) => Term::Num(a - b),
            (Term::PosInf, Term::Num(_)) => Term::PosInf,
            _ => panic!("Term subtraction with infinite right operand"),
        }
    }

    /// Multiplication with the `0 * inf = 0` guard convention.
    pub fn mul(self, rhs: Term) -> Term {
        match (self, rhs) {
            (Term::Num(a), Term::Num(b)) => Term::Num(a * b),
            // 0 * inf = 0 so that `guard * value` annihilates correctly.
            (Term::Num(a), Term::PosInf) | (Term::PosInf, Term::Num(a)) if a.is_zero() => {
                Term::ZERO
            }
            (Term::Num(a), Term::PosInf) | (Term::PosInf, Term::Num(a)) if a.is_negative() => {
                panic!("Term multiplication of negative value with +inf")
            }
            _ => Term::PosInf,
        }
    }

    /// Division with the `0 / 0 = 0` convention used by the ECMP encoding
    /// `c_r = s_r / Σ s_{r'}`: where no rule is selected both numerator and
    /// denominator are zero and the share is zero.
    pub fn div(self, rhs: Term) -> Term {
        match (self, rhs) {
            (Term::Num(a), Term::Num(b)) => {
                if b.is_zero() {
                    assert!(a.is_zero(), "Term division {a}/0 with nonzero numerator");
                    Term::ZERO
                } else {
                    Term::Num(a / b)
                }
            }
            (Term::Num(_), Term::PosInf) => Term::ZERO,
            (Term::PosInf, Term::Num(b)) if !b.is_zero() && !b.is_negative() => Term::PosInf,
            _ => panic!("unsupported Term division involving +inf"),
        }
    }

    /// The smaller terminal (`inf` is the identity).
    pub fn min(self, rhs: Term) -> Term {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// The larger terminal (`inf` is absorbing).
    pub fn max(self, rhs: Term) -> Term {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Term) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Term {
    fn cmp(&self, other: &Term) -> Ordering {
        match (self, other) {
            (Term::Num(a), Term::Num(b)) => a.cmp(b),
            (Term::Num(_), Term::PosInf) => Ordering::Less,
            (Term::PosInf, Term::Num(_)) => Ordering::Greater,
            (Term::PosInf, Term::PosInf) => Ordering::Equal,
        }
    }
}

impl From<Ratio> for Term {
    fn from(r: Ratio) -> Term {
        Term::Num(r)
    }
}

impl From<i64> for Term {
    fn from(n: i64) -> Term {
        Term::int(n)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Num(r) => write!(f, "{r}"),
            Term::PosInf => write!(f, "+inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinity_arithmetic() {
        assert_eq!(Term::PosInf.add(Term::int(5)), Term::PosInf);
        assert_eq!(Term::int(5).add(Term::PosInf), Term::PosInf);
        assert_eq!(Term::PosInf.min(Term::int(5)), Term::int(5));
        assert_eq!(Term::PosInf.max(Term::int(5)), Term::PosInf);
        assert_eq!(Term::ZERO.mul(Term::PosInf), Term::ZERO);
        assert_eq!(Term::PosInf.mul(Term::int(3)), Term::PosInf);
    }

    #[test]
    fn zero_over_zero_is_zero() {
        assert_eq!(Term::ZERO.div(Term::ZERO), Term::ZERO);
        assert_eq!(Term::int(3).div(Term::int(4)), Term::ratio(3, 4));
    }

    #[test]
    fn ordering_puts_infinity_last() {
        assert!(Term::int(1_000_000) < Term::PosInf);
        assert_eq!(Term::PosInf.cmp(&Term::PosInf), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "nonzero numerator")]
    fn nonzero_over_zero_panics() {
        let _ = Term::int(1).div(Term::ZERO);
    }
}
