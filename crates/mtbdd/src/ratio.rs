//! Exact rational arithmetic for MTBDD terminals.
//!
//! Symbolic traffic fractions are products and sums of ECMP shares such as
//! `1/3` or `75/100`. Floating point would make `1/3 + 1/3 + 1/3 != 1`,
//! which breaks the pointer-equality equivalence checks that both `KREDUCE`
//! and link-local flow equivalence depend on, so terminals are exact
//! rationals. The numerator and denominator live in `i128` on the fast
//! path and spill transparently into heap-allocated big integers when a
//! computation outgrows it (deep transient forwarding loops can multiply
//! ECMP split factors for dozens of hops) — results stay exact either way.

use crate::bigint::BigUint;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A signed integer with an `i128` fast path and arbitrary-precision
/// fallback. Canonical: the `Big` variant is only used for values outside
/// the `Small` range, so derived `PartialEq`/`Hash` are sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Int {
    Small(i128),
    Big { neg: bool, mag: BigUint },
}

impl Int {
    const ZERO: Int = Int::Small(0);
    const ONE: Int = Int::Small(1);

    fn from_big(neg: bool, mag: BigUint) -> Int {
        match mag.to_u128() {
            Some(m) if m <= i128::MAX as u128 => {
                let v = m as i128;
                Int::Small(if neg { -v } else { v })
            }
            _ => {
                if mag.is_zero() {
                    Int::Small(0)
                } else {
                    Int::Big { neg, mag }
                }
            }
        }
    }

    fn mag(&self) -> BigUint {
        match self {
            Int::Small(v) => BigUint::from_u128(v.unsigned_abs()),
            Int::Big { mag, .. } => mag.clone(),
        }
    }

    fn is_neg(&self) -> bool {
        match self {
            Int::Small(v) => *v < 0,
            Int::Big { neg, .. } => *neg,
        }
    }

    fn is_zero(&self) -> bool {
        matches!(self, Int::Small(0))
    }

    fn neg(&self) -> Int {
        match self {
            Int::Small(v) => match v.checked_neg() {
                Some(n) => Int::Small(n),
                None => Int::Big {
                    neg: false,
                    mag: BigUint::from_u128(1u128 << 127),
                },
            },
            Int::Big { neg, mag } => Int::Big {
                neg: !neg,
                mag: mag.clone(),
            },
        }
    }

    fn add(&self, other: &Int) -> Int {
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            if let Some(s) = a.checked_add(*b) {
                return Int::Small(s);
            }
        }
        let (an, am) = (self.is_neg(), self.mag());
        let (bn, bm) = (other.is_neg(), other.mag());
        if an == bn {
            Int::from_big(an, am.add(&bm))
        } else {
            match am.cmp_mag(&bm) {
                Ordering::Equal => Int::ZERO,
                Ordering::Greater => Int::from_big(an, am.sub(&bm)),
                Ordering::Less => Int::from_big(bn, bm.sub(&am)),
            }
        }
    }

    fn mul(&self, other: &Int) -> Int {
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            if let Some(p) = a.checked_mul(*b) {
                return Int::Small(p);
            }
        }
        if self.is_zero() || other.is_zero() {
            return Int::ZERO;
        }
        Int::from_big(
            self.is_neg() != other.is_neg(),
            self.mag().mul(&other.mag()),
        )
    }

    /// Exact division (used only by gcd-normalized paths).
    fn div_exact(&self, other: &Int) -> Int {
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            debug_assert!(*b != 0 && a % b == 0);
            return Int::Small(a / b);
        }
        let (q, r) = self.mag().divmod(&other.mag());
        debug_assert!(r.is_zero(), "div_exact with remainder");
        Int::from_big(self.is_neg() != other.is_neg(), q)
    }

    fn gcd(&self, other: &Int) -> Int {
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            // i128 gcd, safe for all magnitudes below the Big spill.
            let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            return Int::from_big(false, BigUint::from_u128(a));
        }
        Int::from_big(false, BigUint::gcd(self.mag(), other.mag()))
    }

    fn cmp(&self, other: &Int) -> Ordering {
        match (self.is_neg(), other.is_neg()) {
            (false, true) => return Ordering::Greater,
            (true, false) => return Ordering::Less,
            _ => {}
        }
        if let (Int::Small(a), Int::Small(b)) = (self, other) {
            return a.cmp(b);
        }
        let mag_cmp = self.mag().cmp_mag(&other.mag());
        if self.is_neg() {
            mag_cmp.reverse()
        } else {
            mag_cmp
        }
    }

    fn to_f64(&self) -> f64 {
        match self {
            Int::Small(v) => *v as f64,
            Int::Big { neg, mag } => {
                let m = mag.to_f64();
                if *neg {
                    -m
                } else {
                    m
                }
            }
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Int::Small(v) => write!(f, "{v}"),
            Int::Big { neg, mag } => {
                write!(f, "{}{}", if *neg { "-" } else { "" }, mag.to_decimal())
            }
        }
    }
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) = 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: Int,
    den: Int,
}

impl Ratio {
    /// The rational 0.
    pub const ZERO: Ratio = Ratio {
        num: Int::Small(0),
        den: Int::Small(1),
    };
    /// The rational 1.
    pub const ONE: Ratio = Ratio {
        num: Int::Small(1),
        den: Int::Small(1),
    };

    /// Builds `num / den`, normalizing sign and reducing by the gcd.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Ratio {
        Ratio::make(Int::Small(num), Int::Small(den))
    }

    fn make(num: Int, den: Int) -> Ratio {
        assert!(!den.is_zero(), "Ratio denominator must be nonzero");
        if num.is_zero() {
            return Ratio::ZERO;
        }
        let g = num.gcd(&den);
        let mut num = num.div_exact(&g);
        let mut den = den.div_exact(&g);
        if den.is_neg() {
            num = num.neg();
            den = den.neg();
        }
        Ratio { num, den }
    }

    /// The integer `n` as a rational.
    pub const fn int(n: i64) -> Ratio {
        Ratio {
            num: Int::Small(n as i128),
            den: Int::Small(1),
        }
    }

    /// Numerator of the reduced form, when it fits `i128`.
    pub fn numer(&self) -> i128 {
        match self.num {
            Int::Small(v) => v,
            Int::Big { .. } => panic!("Ratio numerator exceeds i128; use to_f64/Display"),
        }
    }

    /// Denominator of the reduced form (always positive), when it fits
    /// `i128`.
    pub fn denom(&self) -> i128 {
        match self.den {
            Int::Small(v) => v,
            Int::Big { .. } => panic!("Ratio denominator exceeds i128; use to_f64/Display"),
        }
    }

    /// Whether either component has spilled beyond `i128`.
    pub fn is_big(&self) -> bool {
        matches!(self.num, Int::Big { .. }) || matches!(self.den, Int::Big { .. })
    }

    /// Whether the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether the value is 1.
    pub fn is_one(&self) -> bool {
        self.num == Int::ONE && self.den == Int::ONE
    }

    /// Whether the value has denominator 1.
    pub fn is_integer(&self) -> bool {
        self.den == Int::ONE
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_neg()
    }

    /// Lossy conversion for reporting and plotting.
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics when `self` is zero.
    pub fn recip(&self) -> Ratio {
        assert!(!self.num.is_zero(), "division by zero Ratio");
        Ratio::make(self.den.clone(), self.num.clone())
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        if self.is_negative() {
            -self.clone()
        } else {
            self.clone()
        }
    }

    /// The smaller of `self` and `other`.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of `self` and `other`.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `self + rhs` without consuming either operand. On the `i128` fast
    /// path this copies no heap data at all, which is what the aggregation
    /// hot loop wants (`acc += &volume` instead of two clones per flow).
    pub fn add_ref(&self, rhs: &Ratio) -> Ratio {
        // Fast path entirely in i128 with cross-reduction.
        if let (Int::Small(an), Int::Small(ad), Int::Small(bn), Int::Small(bd)) =
            (&self.num, &self.den, &rhs.num, &rhs.den)
        {
            let g = gcd_i128(*ad, *bd);
            let (da, db) = (ad / g, bd / g);
            if let (Some(l), Some(r), Some(d)) =
                (an.checked_mul(db), bn.checked_mul(da), ad.checked_mul(db))
            {
                if let Some(n) = l.checked_add(r) {
                    return Ratio::new(n, d);
                }
            }
        }
        let n1 = self.num.mul(&rhs.den);
        let n2 = rhs.num.mul(&self.den);
        Ratio::make(n1.add(&n2), self.den.mul(&rhs.den))
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        self.add_ref(&rhs)
    }
}

impl AddAssign<&Ratio> for Ratio {
    fn add_assign(&mut self, rhs: &Ratio) {
        *self = self.add_ref(rhs);
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = self.add_ref(&rhs);
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: self.num.neg(),
            den: self.den,
        }
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Fast path with cross-reduction: (a/b)(c/d), g1 = gcd(a, d),
        // g2 = gcd(c, b).
        if let (Int::Small(a), Int::Small(b), Int::Small(c), Int::Small(d)) =
            (&self.num, &self.den, &rhs.num, &rhs.den)
        {
            let g1 = gcd_i128(*a, *d);
            let g2 = gcd_i128(*c, *b);
            let (a, d) = (a / g1, d / g1);
            let (c, b) = (c / g2, b / g2);
            if let (Some(n), Some(dd)) = (a.checked_mul(c), b.checked_mul(d)) {
                return Ratio::new(n, dd);
            }
        }
        Ratio::make(self.num.mul(&rhs.num), self.den.mul(&rhs.den))
    }
}

impl Div for Ratio {
    type Output = Ratio;
    // Division by reciprocal multiplication is intended here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    debug_assert!(a != 0);
    a as i128
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b (b, d > 0); exact at any size.
        let l = self.num.mul(&other.den);
        let r = other.num.mul(&self.den);
        l.cmp(&r)
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Ratio {
        Ratio::int(n)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == Int::ONE {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Serialize for Ratio {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.to_string())
    }
}

impl Deserialize for Ratio {
    fn from_value(v: &serde::Value) -> Result<Ratio, serde::Error> {
        let s = String::from_value(v)?;
        let (n, d) = match s.split_once('/') {
            Some((n, d)) => (n, d),
            None => (s.as_str(), "1"),
        };
        let n: i128 = n.parse().map_err(serde::de::Error::custom)?;
        let d: i128 = d.parse().map_err(serde::de::Error::custom)?;
        Ok(Ratio::new(n, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(-2, -4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(2, -4), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(0, 7), Ratio::ZERO);
    }

    #[test]
    fn ecmp_thirds_sum_exactly() {
        let third = Ratio::new(1, 3);
        assert_eq!(third.clone() + third.clone() + third, Ratio::ONE);
    }

    #[test]
    fn arithmetic() {
        let a = Ratio::new(3, 4);
        let b = Ratio::new(1, 4);
        assert_eq!(a.clone() + b.clone(), Ratio::ONE);
        assert_eq!(a.clone() - b.clone(), Ratio::new(1, 2));
        assert_eq!(a.clone() * b.clone(), Ratio::new(3, 16));
        assert_eq!(a.clone() / b, Ratio::int(3));
        assert_eq!(-a, Ratio::new(-3, 4));
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert_eq!(Ratio::new(2, 6).cmp(&Ratio::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(3, 4).to_string(), "3/4");
        assert_eq!(Ratio::int(5).to_string(), "5");
        assert_eq!(Ratio::new(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn min_max_recip() {
        let a = Ratio::new(1, 3);
        let b = Ratio::new(1, 2);
        assert_eq!(a.clone().min(b.clone()), a);
        assert_eq!(a.max(b.clone()), b);
        assert_eq!(b.recip(), Ratio::int(2));
    }

    #[test]
    fn spills_to_big_and_back() {
        // 1/2^126 squared overflows i128 denominators.
        let tiny = Ratio::new(1, 1 << 126);
        let tinier = tiny.clone() * tiny.clone();
        assert!(tinier.is_big());
        assert!(tinier > Ratio::ZERO);
        assert!(tinier < Ratio::new(1, i128::MAX));
        // Multiplying back up restores the small representation.
        let back = tinier.clone() * Ratio::new(1 << 126, 1);
        assert!(!back.is_big());
        assert_eq!(back, tiny);
        // Exact summation still works: x + x = 2x.
        let double = tinier.clone() + tinier.clone();
        assert_eq!(double, tinier * Ratio::int(2));
    }

    #[test]
    fn big_display_and_f64() {
        let tiny = Ratio::new(1, 1 << 126);
        let tinier = tiny.clone() * tiny; // 1 / 2^252
        let s = tinier.to_string();
        assert!(s.starts_with("1/"));
        assert!(s.len() > 40, "{s}");
        let f = tinier.to_f64();
        assert!((f - 2f64.powi(-252)).abs() < 1e-300);
    }

    #[test]
    fn big_deep_loop_simulation() {
        // Mimic 60 hops of alternating 1/2 and 1/3 splits plus an
        // accumulator — the workload that overflowed plain i128.
        let mut acc = Ratio::ZERO;
        let mut frac = Ratio::ONE;
        for i in 0..60 {
            let split = if i % 2 == 0 {
                Ratio::new(1, 2)
            } else {
                Ratio::new(1, 3)
            };
            frac = frac * split;
            acc = acc + frac.clone();
        }
        assert!(acc > Ratio::ZERO && acc < Ratio::ONE);
        // The geometric-ish series must still be exact: multiply by the
        // final denominator and obtain an integer.
        let denom = frac.recip();
        assert!((acc * denom).is_integer());
    }

    #[test]
    fn add_assign_matches_add() {
        // Small fast path.
        let mut acc = Ratio::ZERO;
        let third = Ratio::new(1, 3);
        for _ in 0..3 {
            acc += &third;
        }
        assert_eq!(acc, Ratio::ONE);
        // By-value form.
        let mut acc2 = Ratio::new(1, 4);
        acc2 += Ratio::new(3, 4);
        assert_eq!(acc2, Ratio::ONE);
        // Big-int spill path stays exact through +=.
        let tiny = Ratio::new(1, 1 << 126);
        let tinier = tiny.clone() * tiny;
        let mut big_acc = Ratio::ZERO;
        for _ in 0..4 {
            big_acc += &tinier;
        }
        assert_eq!(big_acc, tinier * Ratio::int(4));
    }

    #[test]
    fn serde_roundtrip() {
        let r = Ratio::new(-7, 3);
        let s = serde_json::to_string(&r).unwrap();
        assert_eq!(s, "\"-7/3\"");
        let back: Ratio = serde_json::from_str(&s).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_recip_panics() {
        let _ = Ratio::ZERO.recip();
    }
}
