//! Flat, cache-friendly hash structures for the MTBDD manager hot path.
//!
//! Two structures live here, both keyed by machine words rather than by
//! `Hash`-trait walks over boxed tuples:
//!
//! * [`SlotTable`] — the open-addressed unique table. It stores only
//!   `u32` arena indices; the node payload stays in the manager's flat
//!   `Vec<Node>`, so a probe touches one contiguous `u32` array plus (on
//!   a candidate match) one arena slot. Linear probing, power-of-two
//!   capacity, no tombstones: deletion happens only via mark-compact GC,
//!   which rebuilds the table from the compacted arena.
//! * [`DirectCache`] — a fixed-size direct-mapped memoization cache for
//!   the `apply`/`apply1`/`ite`/`restrict`/`kreduce`/`fused` operation
//!   caches. Keys are packed into two `u64` words up front; a lookup is
//!   one multiply-hash and one 24-byte entry read. Collisions evict the
//!   previous entry — safe for memo caches because hash-consing makes
//!   recomputation idempotent (same inputs always rebuild the same
//!   canonical node), so evictions cost time, never correctness.
//!
//! Both structures are deterministic functions of their operation
//! sequence (no randomized hashing, no address-dependent state), which
//! is what lets CI gate on exact probe-length and nodes-created numbers
//! across machines.
//!
//! This module is `#[doc(hidden)] pub` so the crate's property tests can
//! model-check `SlotTable` membership against a `HashMap` reference.

/// Sentinel for an empty [`SlotTable`] slot.
pub const EMPTY_SLOT: u32 = u32::MAX;

/// Sentinel value marking an unoccupied [`DirectCache`] entry. Valid
/// cached values are node handles whose raw form never reaches
/// `u32::MAX` (that would require an arena of 2^31 terminals).
const NO_VAL: u32 = u32::MAX;

/// Initial capacity of a [`SlotTable`] (slots).
const TABLE_INITIAL: usize = 64;

/// Initial capacity of a [`DirectCache`] (entries), allocated lazily on
/// first insert: 2^14 × 24 B = 384 KiB per cache.
const CACHE_INITIAL: usize = 1 << 14;

/// Direct-mapped caches grow ×4 (up to this cap) under eviction or
/// residency pressure (see [`DirectCache::insert`]).
const CACHE_MAX: usize = 1 << 20;

/// Result of probing a [`SlotTable`].
pub struct Probe {
    /// The stored index whose key matched, if any.
    pub found: Option<u32>,
    /// Slot where the match was found, or the first empty slot where an
    /// insert for this key must go.
    pub slot: usize,
    /// Number of occupied slots stepped over before terminating (0 = the
    /// home slot resolved the probe).
    pub steps: u32,
}

/// Open-addressed, linear-probed table of `u32` arena indices.
///
/// The table never stores keys; callers supply the key hash and an
/// equality predicate that inspects the arena. Load factor is kept at or
/// below 7/8; growth rebuilds the table by re-probing every resident
/// index with a caller-supplied hash function.
#[derive(Clone, Default)]
pub struct SlotTable {
    slots: Vec<u32>,
    len: usize,
}

impl SlotTable {
    /// Creates an empty table (no allocation until the first grow).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident indices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no indices are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count (0 before the first grow).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// True when one more insert would push the load factor above 3/4.
    /// Callers must [`grow`](Self::grow) before probing for an insert so
    /// the returned slot stays valid. (Linear probing degrades sharply
    /// past ~3/4: at 7/8 the expected unsuccessful probe is ~32 slots,
    /// at 3/4 it is ~8 — and every hash-consing miss is an unsuccessful
    /// probe.)
    pub fn needs_grow(&self) -> bool {
        self.slots.is_empty() || (self.len + 1) * 4 > self.slots.len() * 3
    }

    /// Home slot for a hash: the **top** log₂(cap) bits. The Fx hash
    /// finishes with a multiply, which mixes every input bit into the
    /// high bits but leaves the low bits a function of the low input
    /// bits only — masking low bits clusters sequential arena indices
    /// into runs, which linear probing turns into long chains.
    #[inline]
    fn home(hash: u64, cap: usize) -> usize {
        debug_assert!(cap.is_power_of_two());
        (hash >> (64 - cap.trailing_zeros())) as usize
    }

    /// Probes for `hash`, using `eq` to test candidate indices against
    /// the caller's arena. Returns the match or the insertion slot,
    /// along with the probe length for instrumentation.
    pub fn probe(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Probe {
        if self.slots.is_empty() {
            return Probe {
                found: None,
                slot: 0,
                steps: 0,
            };
        }
        let mask = self.slots.len() - 1;
        let mut slot = Self::home(hash, self.slots.len());
        let mut steps = 0u32;
        loop {
            let v = self.slots[slot];
            if v == EMPTY_SLOT {
                return Probe {
                    found: None,
                    slot,
                    steps,
                };
            }
            if eq(v) {
                return Probe {
                    found: Some(v),
                    slot,
                    steps,
                };
            }
            steps += 1;
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts `val` at a slot previously returned by
    /// [`probe`](Self::probe) with `found == None`. The table must not
    /// have been grown in between.
    pub fn insert_at(&mut self, slot: usize, val: u32) {
        debug_assert!(!self.slots.is_empty(), "insert into ungrown table");
        debug_assert_eq!(self.slots[slot], EMPTY_SLOT, "insert over occupied slot");
        self.slots[slot] = val;
        self.len += 1;
    }

    /// Doubles capacity and re-places every resident index using
    /// `hash_of` to recompute its key hash from the arena.
    pub fn grow(&mut self, hash_of: impl Fn(u32) -> u64) {
        let new_cap = (self.slots.len() * 2).max(TABLE_INITIAL);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        let mask = new_cap - 1;
        for v in old {
            if v == EMPTY_SLOT {
                continue;
            }
            let mut slot = Self::home(hash_of(v), new_cap);
            while self.slots[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = v;
        }
    }

    /// Convenience for bulk rebuilds (GC): insert an index known to be
    /// absent, growing first when needed.
    pub fn insert_new(&mut self, hash: u64, val: u32, hash_of: impl Fn(u32) -> u64) {
        if self.needs_grow() {
            self.grow(&hash_of);
        }
        let p = self.probe(hash, |_| false);
        self.insert_at(p.slot, val);
    }
}

#[derive(Clone, Copy)]
struct CacheEntry {
    w0: u64,
    w1: u64,
    val: u32,
}

const EMPTY_ENTRY: CacheEntry = CacheEntry {
    w0: 0,
    w1: 0,
    val: NO_VAL,
};

/// Direct-mapped memoization cache keyed by two packed `u64` words.
///
/// Hit/miss/eviction counters live inside the cache so per-cache stats
/// cannot be conflated (each manager cache owns exactly its own
/// counters). An eviction is a hash collision overwriting a live entry;
/// sustained eviction pressure grows the cache ×4 up to [`CACHE_MAX`].
#[derive(Clone, Default)]
pub struct DirectCache {
    entries: Vec<CacheEntry>,
    len: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    evictions_since_grow: u64,
}

impl DirectCache {
    /// Creates an empty cache (no allocation until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot(&self, w0: u64, w1: u64) -> usize {
        debug_assert!(self.entries.len().is_power_of_two());
        // Top bits, for the same reason as `SlotTable::home`.
        (crate::hasher::fx_hash_words(w0, w1) >> (64 - self.entries.len().trailing_zeros()))
            as usize
    }

    /// Looks up the packed key, booking a hit or miss.
    #[inline]
    pub fn get(&mut self, w0: u64, w1: u64) -> Option<u32> {
        if !self.entries.is_empty() {
            let e = self.entries[self.slot(w0, w1)];
            if e.val != NO_VAL && e.w0 == w0 && e.w1 == w1 {
                self.hits += 1;
                return Some(e.val);
            }
        }
        self.misses += 1;
        None
    }

    /// Stores `val` under the packed key, evicting any colliding entry.
    ///
    /// Growth policy: ×4 (up to [`CACHE_MAX`]) when either collisions
    /// since the last growth reach 1/8 of capacity (conflict pressure —
    /// an eviction is a future recomputation, which costs far more than
    /// the rehash) or residency reaches 3/4 of capacity (the next
    /// conflicts are imminent). Both triggers are relative to capacity,
    /// so a workload that outgrows the cache reaches [`CACHE_MAX`]
    /// after a bounded number of early evictions instead of paying
    /// O(capacity) evictions per step as resident-count-relative
    /// triggers do.
    pub fn insert(&mut self, w0: u64, w1: u64, val: u32) {
        debug_assert_ne!(val, NO_VAL, "cache value collides with empty sentinel");
        if self.entries.is_empty() {
            self.entries = vec![EMPTY_ENTRY; CACHE_INITIAL];
        } else if self.entries.len() < CACHE_MAX
            && (self.evictions_since_grow * 8 >= self.entries.len() as u64
                || self.len * 4 >= self.entries.len() * 3)
        {
            self.grow();
        }
        let s = self.slot(w0, w1);
        let e = &mut self.entries[s];
        if e.val == NO_VAL {
            self.len += 1;
        } else if e.w0 != w0 || e.w1 != w1 {
            self.evictions += 1;
            self.evictions_since_grow += 1;
        }
        *e = CacheEntry { w0, w1, val };
    }

    fn grow(&mut self) {
        let new_cap = self.entries.len() * 4;
        let old = std::mem::replace(&mut self.entries, vec![EMPTY_ENTRY; new_cap]);
        self.len = 0;
        self.evictions_since_grow = 0;
        for e in old {
            if e.val == NO_VAL {
                continue;
            }
            let s = self.slot(e.w0, e.w1);
            if self.entries[s].val == NO_VAL {
                self.len += 1;
            }
            self.entries[s] = e;
        }
    }

    /// Drops all entries, booking each resident entry as an eviction
    /// (mirrors the old map caches, whose `clear_caches` counted dropped
    /// entries as evictions). Counters other than eviction survive.
    pub fn clear(&mut self) {
        self.evictions += self.len as u64;
        self.len = 0;
        self.evictions_since_grow = 0;
        self.entries = Vec::new();
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated entry count (0 before first insert).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Cumulative lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative evictions (collision overwrites plus cleared entries).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Heap bytes held by the entry array.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<CacheEntry>()
    }

    /// Iterates resident `(w0, w1, val)` entries (audit sampling).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u32)> + '_ {
        self.entries
            .iter()
            .filter(|e| e.val != NO_VAL)
            .map(|e| (e.w0, e.w1, e.val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher::fx_hash_word;

    #[test]
    fn slot_table_insert_and_find() {
        let mut t = SlotTable::new();
        let keys: Vec<u64> = (0..500u64).map(|i| i * 3 + 7).collect();
        for (ix, &k) in keys.iter().enumerate() {
            if t.needs_grow() {
                let keys = &keys;
                t.grow(|v| fx_hash_word(keys[v as usize]));
            }
            let p = t.probe(fx_hash_word(k), |v| keys[v as usize] == k);
            assert!(p.found.is_none());
            t.insert_at(p.slot, ix as u32);
        }
        assert_eq!(t.len(), keys.len());
        for (ix, &k) in keys.iter().enumerate() {
            let p = t.probe(fx_hash_word(k), |v| keys[v as usize] == k);
            assert_eq!(p.found, Some(ix as u32));
        }
        let p = t.probe(fx_hash_word(999_999), |v| keys[v as usize] == 999_999);
        assert!(p.found.is_none());
        assert!(t.capacity().is_power_of_two());
        assert!(t.len() * 8 <= t.capacity() * 7);
    }

    #[test]
    fn slot_table_probe_is_deterministic() {
        let build = || {
            let mut t = SlotTable::new();
            let keys: Vec<u64> = (0..200u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
            let mut total_steps = 0u64;
            for (ix, &k) in keys.iter().enumerate() {
                if t.needs_grow() {
                    let keys = &keys;
                    t.grow(|v| fx_hash_word(keys[v as usize]));
                }
                let p = t.probe(fx_hash_word(k), |v| keys[v as usize] == k);
                total_steps += p.steps as u64;
                t.insert_at(p.slot, ix as u32);
            }
            (t.capacity(), total_steps)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn direct_cache_hit_miss_evict() {
        let mut c = DirectCache::new();
        assert_eq!(c.get(1, 2), None);
        assert_eq!(c.misses(), 1);
        c.insert(1, 2, 42);
        assert_eq!(c.get(1, 2), Some(42));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.len(), 1);
        // Same slot, different key (identical hash inputs impossible; force
        // a collision by inserting a key that maps to the same slot).
        let shift = 64 - c.capacity().trailing_zeros();
        // fx_hash_words is injective-ish; find a colliding w0 by scan.
        let target = (crate::hasher::fx_hash_words(1, 2) >> shift) as usize;
        let mut w0 = 2u64;
        while ((crate::hasher::fx_hash_words(w0, 2) >> shift) as usize) != target {
            w0 += 1;
        }
        c.insert(w0, 2, 7);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, 2), None);
        assert_eq!(c.get(w0, 2), Some(7));
    }

    #[test]
    fn direct_cache_clear_books_evictions() {
        let mut c = DirectCache::new();
        for i in 0..10u64 {
            c.insert(i, 0, i as u32);
        }
        let resident = c.len() as u64;
        let before = c.evictions();
        c.clear();
        assert_eq!(c.evictions(), before + resident);
        assert_eq!(c.len(), 0);
        assert_eq!(c.capacity(), 0);
        assert_eq!(c.get(3, 0), None);
    }

    #[test]
    fn direct_cache_grows_under_eviction_pressure() {
        let mut c = DirectCache::new();
        // Insert far more distinct keys than the initial capacity; the
        // cache must grow at least once and retain recent entries.
        for i in 0..(CACHE_INITIAL as u64 * 3) {
            c.insert(i, i ^ 0xdead, (i & 0xffff) as u32);
        }
        assert!(c.capacity() > CACHE_INITIAL);
        assert!(c.capacity() <= CACHE_MAX);
        assert!(c.len() > 0);
    }
}
