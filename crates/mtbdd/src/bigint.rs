//! Minimal arbitrary-precision integers backing [`Ratio`](crate::Ratio).
//!
//! Symbolic traffic execution multiplies ECMP split factors along every
//! forwarding hop; under transient micro-loops (hop-by-hop iBGP multipath
//! re-splitting at every router) the exact denominators can outgrow
//! `i128` long before the TTL bound. Rather than silently losing
//! exactness, `Ratio` spills into this heap representation. The fast
//! `i128` path still covers essentially all arithmetic; these routines
//! only need to be correct, not fast.
//!
//! `BigUint` is a little-endian `Vec<u64>` magnitude with no trailing
//! zero limbs. Division is binary long division (shift-and-subtract) and
//! gcd is Stein's binary algorithm — no Knuth-D needed at these sizes.

use std::cmp::Ordering;

/// An unsigned arbitrary-precision integer (canonical: no trailing zero
/// limbs; empty = 0).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub(crate) struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    pub fn zero() -> BigUint {
        BigUint { limbs: Vec::new() }
    }

    pub fn from_u128(x: u128) -> BigUint {
        let mut limbs = vec![x as u64, (x >> 64) as u64];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn trim(mut self) -> BigUint {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        self
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| l >> off & 1 == 1)
    }

    pub fn cmp_mag(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            if a != b {
                return a.cmp(b);
            }
        }
        Ordering::Equal
    }

    pub fn add(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0) as u128;
            let b = other.limbs.get(i).copied().unwrap_or(0) as u128;
            let s = a + b + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint { limbs: out }.trim()
    }

    /// `self - other`; requires `self >= other`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        debug_assert!(self.cmp_mag(other) != Ordering::Less);
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i128;
            let b = other.limbs.get(i).copied().unwrap_or(0) as i128;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        debug_assert_eq!(borrow, 0, "BigUint::sub underflow");
        BigUint { limbs: out }.trim()
    }

    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint { limbs: out }.trim()
    }

    fn shl1(&mut self) {
        let mut carry = 0u64;
        for l in &mut self.limbs {
            let new_carry = *l >> 63;
            *l = (*l << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    fn shr1(&mut self) {
        let mut carry = 0u64;
        for l in self.limbs.iter_mut().rev() {
            let new_carry = *l & 1;
            *l = (*l >> 1) | (carry << 63);
            carry = new_carry;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Binary long division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics when `divisor` is zero.
    pub fn divmod(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self.cmp_mag(divisor) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        let bits = self.bit_len();
        let mut quo = vec![0u64; self.limbs.len()];
        let mut rem = BigUint::zero();
        for i in (0..bits).rev() {
            rem.shl1();
            if self.bit(i) {
                if rem.limbs.is_empty() {
                    rem.limbs.push(1);
                } else {
                    rem.limbs[0] |= 1;
                }
            }
            if rem.cmp_mag(divisor) != Ordering::Less {
                rem = rem.sub(divisor);
                quo[i / 64] |= 1 << (i % 64);
            }
        }
        (BigUint { limbs: quo }.trim(), rem)
    }

    /// Greatest common divisor (Stein's binary algorithm).
    pub fn gcd(mut a: BigUint, mut b: BigUint) -> BigUint {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a.shr1();
            b.shr1();
            shift += 1;
        }
        while a.is_even() {
            a.shr1();
        }
        loop {
            while b.is_even() {
                b.shr1();
            }
            if a.cmp_mag(&b) == Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        for _ in 0..shift {
            a.shl1();
        }
        a
    }

    /// Approximate conversion for reporting.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_len();
        if bits <= 128 {
            return self.to_u128().unwrap() as f64;
        }
        // Take the top 64 bits and scale.
        let shift = bits - 64;
        let mut top = 0u64;
        for i in 0..64 {
            if self.bit(shift + i) {
                top |= 1 << i;
            }
        }
        top as f64 * 2f64.powi(shift as i32)
    }

    /// Decimal representation.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let chunk = BigUint::from_u128(10u128.pow(19));
        let mut parts = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod(&chunk);
            parts.push(r.to_u128().unwrap() as u64 as u128);
            cur = q;
        }
        let mut out = parts.pop().map(|p| p.to_string()).unwrap_or_default();
        for p in parts.into_iter().rev() {
            out.push_str(&format!("{p:019}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(x: u128) -> BigUint {
        BigUint::from_u128(x)
    }

    #[test]
    fn roundtrip_u128() {
        for x in [0u128, 1, u64::MAX as u128, u128::MAX, 12345678901234567890] {
            assert_eq!(big(x).to_u128(), Some(x));
        }
    }

    #[test]
    fn add_sub_with_carries() {
        let a = big(u128::MAX);
        let one = big(1);
        let s = a.add(&one); // 2^128
        assert_eq!(s.to_u128(), None);
        assert_eq!(s.bit_len(), 129);
        assert_eq!(s.sub(&one), a);
        assert_eq!(s.sub(&s), BigUint::zero());
    }

    #[test]
    fn mul_large() {
        let a = big(u128::MAX);
        let sq = a.mul(&a); // (2^128-1)^2 = 2^256 - 2^129 + 1
        let (q, r) = sq.divmod(&a);
        assert_eq!(q, a);
        assert!(r.is_zero());
        assert_eq!(big(0).mul(&a), BigUint::zero());
        assert_eq!(big(7).mul(&big(6)), big(42));
    }

    #[test]
    fn divmod_matches_u128() {
        for (a, b) in [(100u128, 7u128), (u128::MAX, 3), (12345, 12345), (5, 100)] {
            let (q, r) = big(a).divmod(&big(b));
            assert_eq!(q, big(a / b), "{a}/{b}");
            assert_eq!(r, big(a % b), "{a}%{b}");
        }
    }

    #[test]
    fn gcd_matches_u128() {
        let g = |a: u128, b: u128| BigUint::gcd(big(a), big(b)).to_u128().unwrap();
        assert_eq!(g(12, 18), 6);
        assert_eq!(g(0, 5), 5);
        assert_eq!(g(7, 0), 7);
        assert_eq!(g(1 << 100, 1 << 60), 1 << 60);
        assert_eq!(g(3u128.pow(50), 3u128.pow(30) * 2), 3u128.pow(30));
    }

    #[test]
    fn gcd_beyond_u128() {
        let a = big(u128::MAX).mul(&big(6));
        let b = big(u128::MAX).mul(&big(4));
        let g = BigUint::gcd(a, b);
        assert_eq!(g, big(u128::MAX).mul(&big(2)));
    }

    #[test]
    fn decimal_printing() {
        assert_eq!(big(0).to_decimal(), "0");
        assert_eq!(big(12345).to_decimal(), "12345");
        let big_num = big(10u128.pow(20)).mul(&big(10u128.pow(20)));
        assert_eq!(big_num.to_decimal(), format!("1{}", "0".repeat(40)));
    }

    #[test]
    fn to_f64_is_close() {
        let x = big(3).mul(&big(1 << 100)).mul(&big(1 << 100));
        let expect = 3.0 * 2f64.powi(200);
        let got = x.to_f64();
        assert!((got - expect).abs() / expect < 1e-9, "{got} vs {expect}");
    }
}
