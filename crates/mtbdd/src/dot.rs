//! Graphviz DOT export for debugging and documentation figures
//! (the paper's Fig. 8 / Fig. 18 style: dashed = failed, solid = alive).

use crate::manager::Mtbdd;
use crate::node::NodeRef;
use std::fmt::Write as _;

impl Mtbdd {
    /// Renders the diagram rooted at `f` in Graphviz DOT syntax.
    /// `var_name(v)` labels decision nodes (e.g. the link name of a failure
    /// variable).
    pub fn to_dot(&self, f: NodeRef, var_name: impl Fn(u32) -> String) -> String {
        let mut out = String::from("digraph mtbdd {\n  rankdir=TB;\n");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            if r.is_terminal() {
                let _ = writeln!(
                    out,
                    "  n{} [shape=box,label=\"{}\"];",
                    r.0,
                    self.terminal_value(r)
                );
            } else {
                let n = self.node_at(r);
                let _ = writeln!(
                    out,
                    "  n{} [shape=circle,label=\"{}\"];",
                    r.0,
                    var_name(n.var)
                );
                let _ = writeln!(out, "  n{} -> n{} [style=dashed];", r.0, n.lo.0);
                let _ = writeln!(out, "  n{} -> n{};", r.0, n.hi.0);
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let mut m = Mtbdd::new();
        let x = m.fresh_var();
        let g = m.var_guard(x);
        let dot = m.to_dot(g, |v| format!("x{v}"));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("shape=box"));
    }
}
