//! Preflight lint rules for networks and verification jobs.
//!
//! Each rule has a stable `YU0xx` code (see the table in `DESIGN.md`;
//! codes are append-only). Rules are purely static — they inspect the
//! [`Network`], flows, TLP, and failure budget without running any
//! simulation — and catch the misconfigurations that would otherwise
//! surface as confusing verification results: traffic silently dropped
//! because a static next hop resolves nowhere, an SR policy that can
//! never establish its tunnels, a TLP bound no traffic matrix could
//! ever violate or satisfy.

use crate::diagnostic::Diagnostic;
use yu_mtbdd::Ratio;
use yu_net::{FailureMode, Flow, LoadPoint, Network, Tlp};

/// Lints a network configuration (codes `YU001`–`YU013`).
pub fn lint_network(net: &Network) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let topo = &net.topo;

    // YU001: the per-router config vector must match the topology.
    if net.configs.len() != topo.num_routers() {
        out.push(Diagnostic::error(
            "YU001",
            "network",
            format!(
                "config count {} does not match router count {}",
                net.configs.len(),
                topo.num_routers()
            ),
        ));
        // Every per-router rule below indexes configs by RouterId; bail
        // out rather than panic on the mismatch we just reported.
        return out;
    }

    // YU002: duplicate router names break name-based lookups (CLI
    // `--fail`/`--router`, violation descriptions).
    let mut names = std::collections::HashMap::new();
    for r in topo.routers() {
        if let Some(prev) = names.insert(&topo.router(r).name, r) {
            out.push(Diagnostic::error(
                "YU002",
                format!("router {}", topo.router(r).name),
                format!("duplicate router name (also used by {prev})"),
            ));
        }
    }

    // YU003: zero or negative link capacity.
    for u in topo.ulinks() {
        let (fwd, _) = topo.directions(u);
        let cap = &topo.link(fwd).capacity;
        if cap <= &Ratio::ZERO {
            out.push(Diagnostic::error(
                "YU003",
                format!("link {}", topo.ulink_label(u)),
                format!("non-positive capacity {cap}"),
            ));
        }
    }

    for r in topo.routers() {
        let cfg = net.config(r);
        let name = &topo.router(r).name;
        let loc = |what: String| format!("router {name}: {what}");

        for (pi, pol) in cfg.sr_policies.iter().enumerate() {
            let ploc = loc(format!("SR policy {pi} (endpoint {})", pol.endpoint));
            // YU004: a policy with no candidate paths steers matching
            // traffic nowhere.
            if pol.paths.is_empty() {
                out.push(Diagnostic::error(
                    "YU004",
                    ploc.clone(),
                    "SR policy has no paths",
                ));
            }
            for (qi, path) in pol.paths.iter().enumerate() {
                // YU005: an explicit path needs at least one segment.
                if path.segments.is_empty() {
                    out.push(Diagnostic::error(
                        "YU005",
                        format!("{ploc}, path {qi}"),
                        "SR path has no segments",
                    ));
                    continue;
                }
                // YU006/YU007: every segment must name a router loopback,
                // and each tunnel hop must stay inside one IGP (same AS as
                // the previous hop) or it can never be established.
                let mut prev_ases: Vec<u32> = vec![net.asn(r)];
                for (si, seg) in path.segments.iter().enumerate() {
                    let owners = topo.loopback_owners(*seg);
                    if owners.is_empty() {
                        out.push(Diagnostic::error(
                            "YU006",
                            format!("{ploc}, path {qi}, segment {si}"),
                            format!("segment {seg} is not the loopback of any router"),
                        ));
                        break;
                    }
                    let owner_ases: Vec<u32> = owners.iter().map(|&o| net.asn(o)).collect();
                    if !owner_ases.iter().any(|a| prev_ases.contains(a)) {
                        out.push(Diagnostic::error(
                            "YU007",
                            format!("{ploc}, path {qi}, segment {si}"),
                            format!(
                                "no owner of segment {seg} shares an AS with the previous \
                                 hop: the IGP tunnel can never be established"
                            ),
                        ));
                        break;
                    }
                    prev_ases = owner_ases;
                }
            }
        }

        if let Some(bgp) = &cfg.bgp {
            // YU008: a `network` statement only originates (and delivers)
            // when a connected or static route backs it.
            for n in &bgp.networks {
                let owned = cfg.connected.iter().any(|c| c == n)
                    || cfg.static_routes.iter().any(|s| s.prefix == *n);
                if !owned {
                    out.push(Diagnostic::error(
                        "YU008",
                        loc(format!("BGP network {n}")),
                        "originated into BGP without a connected or static route",
                    ));
                }
            }
            // YU009/YU010: per-peer settings must reference real routers
            // with an actual derived session.
            let sessions: Vec<_> = net.bgp_sessions(r).iter().map(|&(p, _)| p).collect();
            let peer_refs = bgp
                .peer_local_pref
                .iter()
                .map(|&(p, _)| (p, "local-pref"))
                .chain(
                    bgp.deny_exports
                        .iter()
                        .filter_map(|d| d.peer.map(|p| (p, "deny-export"))),
                );
            for (peer, what) in peer_refs {
                if peer.0 as usize >= topo.num_routers() {
                    out.push(Diagnostic::error(
                        "YU009",
                        loc(format!("BGP {what} for {peer}")),
                        "references a router that does not exist",
                    ));
                } else if !sessions.contains(&peer) {
                    out.push(Diagnostic::warning(
                        "YU010",
                        loc(format!("BGP {what} for {}", topo.router(peer).name)),
                        "no BGP session with this router is derived \
                         (not a neighbor in another AS, or BGP is not enabled there)",
                    ));
                }
            }
        }

        // YU011: a recursive static next hop must resolve somewhere — a
        // router loopback (IGP or SR) or an address inside a connected
        // network. `Null0` drops by design and is always fine.
        for (si, sr) in cfg.static_routes.iter().enumerate() {
            if let yu_net::StaticNextHop::Ip(nh) = sr.next_hop {
                let resolvable = !topo.loopback_owners(nh).is_empty()
                    || net
                        .configs
                        .iter()
                        .any(|c| c.connected.iter().any(|p| p.contains(nh)));
                if !resolvable {
                    out.push(Diagnostic::error(
                        "YU011",
                        loc(format!("static route {si} ({} via {nh})", sr.prefix)),
                        "next hop is not a router loopback and not covered by \
                         any connected network: traffic will blackhole",
                    ));
                }
            }
        }
    }

    // YU012: anycast loopbacks are legal (Fig. 9) but worth surfacing —
    // they change IGP resolution semantics.
    let mut by_loopback: std::collections::BTreeMap<_, Vec<_>> = std::collections::BTreeMap::new();
    for r in topo.routers() {
        by_loopback
            .entry(topo.router(r).loopback)
            .or_default()
            .push(r);
    }
    for (ip, owners) in &by_loopback {
        if owners.len() > 1 {
            let names: Vec<_> = owners
                .iter()
                .map(|&o| topo.router(o).name.as_str())
                .collect();
            out.push(Diagnostic::warning(
                "YU012",
                format!("loopback {ip}"),
                format!("anycast: shared by {}", names.join(", ")),
            ));
        }
    }

    // YU013: the same prefix attached to several routers (anycast
    // delivery or a likely copy-paste mistake).
    let mut by_prefix: std::collections::BTreeMap<_, Vec<_>> = std::collections::BTreeMap::new();
    for r in topo.routers() {
        for p in &net.config(r).connected {
            by_prefix.entry(*p).or_default().push(r);
        }
    }
    for (p, owners) in &by_prefix {
        if owners.len() > 1 {
            let names: Vec<_> = owners
                .iter()
                .map(|&o| topo.router(o).name.as_str())
                .collect();
            out.push(Diagnostic::warning(
                "YU013",
                format!("prefix {p}"),
                format!("attached to multiple routers: {}", names.join(", ")),
            ));
        }
    }

    out
}

/// Lints a complete verification job: the network plus the traffic
/// matrix, the property, and the failure budget (codes `YU014`–`YU020`
/// on top of every [`lint_network`] rule).
pub fn lint_spec(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: u32,
    mode: FailureMode,
) -> Vec<Diagnostic> {
    let mut out = lint_network(net);
    let topo = &net.topo;

    let mut total_volume = Ratio::ZERO;
    for (i, f) in flows.iter().enumerate() {
        // YU014: the ingress must exist.
        if f.ingress.0 as usize >= topo.num_routers() {
            out.push(Diagnostic::error(
                "YU014",
                format!("flow {i} ({} -> {})", f.src, f.dst),
                format!("ingress {:?} does not exist", f.ingress),
            ));
        }
        // YU015/YU016: volumes must be positive to mean anything.
        if f.volume.is_negative() {
            out.push(Diagnostic::error(
                "YU015",
                format!("flow {i} ({} -> {})", f.src, f.dst),
                format!("negative volume {}", f.volume),
            ));
        } else if f.volume.is_zero() {
            out.push(Diagnostic::warning(
                "YU016",
                format!("flow {i} ({} -> {})", f.src, f.dst),
                "zero volume: the flow contributes no load anywhere",
            ));
        } else {
            total_volume += f.volume.clone();
        }
    }

    for (i, req) in tlp.reqs.iter().enumerate() {
        // YU017: the measurement point must exist.
        let in_range = match req.point {
            LoadPoint::Link(l) => (l.0 as usize) < topo.num_links(),
            LoadPoint::Delivered(r) | LoadPoint::Dropped(r) => (r.0 as usize) < topo.num_routers(),
        };
        if !in_range {
            out.push(Diagnostic::error(
                "YU017",
                format!("requirement {i}"),
                format!("load point {:?} does not exist in the topology", req.point),
            ));
            continue;
        }
        // YU018: a lower bound above the whole traffic matrix can never
        // be satisfied — every scenario is a counterexample.
        if let Some(min) = &req.min {
            if min > &total_volume {
                out.push(Diagnostic::warning(
                    "YU018",
                    format!("requirement {i} ({})", req.point.describe(topo)),
                    format!(
                        "minimum load {min} exceeds the total flow volume {total_volume}: \
                         the requirement cannot be satisfied"
                    ),
                ));
            }
        }
        // YU019: an upper bound above the link's capacity tolerates
        // physically overloaded links — usually a misplaced threshold.
        if let (LoadPoint::Link(l), Some(max)) = (req.point, &req.max) {
            let cap = &topo.link(l).capacity;
            if max > cap {
                out.push(Diagnostic::warning(
                    "YU019",
                    format!("requirement {i} (link {})", topo.link_label(l)),
                    format!("maximum load {max} exceeds the link capacity {cap}"),
                ));
            }
        }
    }

    // YU020: a failure budget at or above the element count makes the
    // "≤ k failures" restriction vacuous (and KREDUCE a no-op).
    let elements = match mode {
        FailureMode::Links => topo.num_ulinks(),
        FailureMode::Routers => topo.num_routers(),
        FailureMode::LinksAndRouters => topo.num_ulinks() + topo.num_routers(),
    };
    if k as usize >= elements && elements > 0 {
        out.push(Diagnostic::warning(
            "YU020",
            "spec",
            format!(
                "failure budget k = {k} is not below the number of failure \
                 elements ({elements}): every scenario is within budget"
            ),
        ));
    }

    out
}
