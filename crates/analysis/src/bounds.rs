//! Interval load-bound inference and requirement classification.
//!
//! For every TLP requirement the classifier derives a sound interval
//! `[0, U]` containing the load at the measurement point in *every*
//! failure scenario, from three facts about the symbolic execution
//! model:
//!
//! 1. **Mass conservation.** Per flow, delivered plus dropped mass
//!    never exceeds the flow's volume, so the load at a
//!    `Delivered`/`Dropped` point is at most the total volume of the
//!    flows whose ingress can reach that router at all.
//! 2. **Hop-bounded traversal.** A flow's fraction on a single
//!    directed link can exceed 1 only through transient forwarding
//!    loops, and the execution truncates after `max_hops` traversals
//!    — so `max_hops × Σ volumes` bounds any link load.
//! 3. **Monotone reachability.** Failures only remove edges, so
//!    full-topology reachability over-approximates where traffic can
//!    be under any scenario.
//!
//! A requirement whose bounds are satisfied by every value in
//! `[0, U]` is `ProvenSafe`; one that fails in some concrete ≤ k
//! scenario (zero failures for an infeasible minimum, or a
//! disconnecting cut from [`crate::semantic`]) is `ProvenViolated`;
//! everything else `NeedsSymbolic`. Every non-symbolic verdict
//! carries a [`Certificate`] that [`check_certificate`] re-validates
//! from scratch — plain BFS and rational arithmetic, no shared state
//! with the classifier.

use crate::diagnostic::Diagnostic;
use crate::lint::lint_spec;
use crate::semantic::{
    bridges, isolated_routers, links_failable, min_disconnecting_failures, partition_failures,
    reachable_from, reachable_under, routers_failable, CutTarget,
};
use serde::Serialize;
use std::collections::HashMap;
use yu_mtbdd::Ratio;
use yu_net::{FailureMode, Flow, LoadPoint, Network, RouterId, Scenario, Tlp, TlpReq};

/// The part of the verification options the static analysis needs.
#[derive(Debug, Clone, Copy)]
pub struct PreflightConfig {
    /// Failure budget.
    pub k: u32,
    /// What can fail.
    pub mode: FailureMode,
    /// TTL bound of the symbolic execution (enters the link-load
    /// bound: a loop can re-traverse a link at most `max_hops` times).
    pub max_hops: usize,
}

/// Verdict of the static classifier for one requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReqClass {
    /// The requirement holds in every ≤ k scenario; the symbolic
    /// engine can skip it.
    ProvenSafe,
    /// Some concrete ≤ k scenario violates the requirement. The
    /// symbolic engine still runs (it produces the exact violation
    /// the report needs), but the verdict is known.
    ProvenViolated,
    /// The static analysis cannot decide; the symbolic engine must.
    NeedsSymbolic,
}

/// A machine-checkable justification for a non-symbolic verdict.
/// Each variant states exactly the facts [`check_certificate`]
/// re-derives independently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Certificate {
    /// No positive-volume flow's ingress reaches the point in the
    /// intact topology, so the load is identically zero and the
    /// bounds accept zero.
    Unreachable,
    /// The load never exceeds `bound` (conservation / hop-bounded
    /// traversal) and the bounds accept all of `[0, bound]`.
    UpperBound {
        /// Sound upper bound on the load in every scenario.
        bound: Ratio,
    },
    /// No upper bound is requested and the minimum is at most zero:
    /// nonnegative loads always comply.
    TrivialBounds,
    /// `min > max`: no load value can satisfy the requirement, so
    /// every scenario (including zero failures) violates it.
    ContradictoryBounds,
    /// The requested minimum exceeds the sound upper bound `bound`,
    /// so every scenario violates the requirement.
    InfeasibleMin {
        /// Sound upper bound on the load in every scenario.
        bound: Ratio,
    },
    /// Failing `cut` (within budget) leaves the point unreachable
    /// from every source, zeroing a load that must stay positive.
    DisconnectingCut {
        /// The concrete ≤ k failure scenario.
        cut: Scenario,
    },
}

impl Certificate {
    /// One-line human summary (for diagnostics and telemetry).
    pub fn describe(&self) -> String {
        match self {
            Certificate::Unreachable => "point unreachable from every flow ingress".into(),
            Certificate::UpperBound { bound } => format!("load can never exceed {bound}"),
            Certificate::TrivialBounds => "loads are nonnegative and no upper bound is set".into(),
            Certificate::ContradictoryBounds => "min exceeds max: unsatisfiable bounds".into(),
            Certificate::InfeasibleMin { bound } => {
                format!("minimum exceeds the sound load bound {bound}")
            }
            Certificate::DisconnectingCut { cut } => {
                format!("a {}-failure cut disconnects every source", cut.count())
            }
        }
    }
}

/// Classification of one requirement, with its certificate when the
/// verdict is not `NeedsSymbolic`.
#[derive(Debug, Clone, Serialize)]
pub struct ReqClassification {
    /// Index of the requirement in the TLP.
    pub req_ix: usize,
    /// The verdict.
    pub class: ReqClass,
    /// Why — absent exactly when `class` is `NeedsSymbolic`.
    pub certificate: Option<Certificate>,
}

/// The incremental classifier: owns the per-ingress reachability
/// cache so classifying a whole TLP runs one BFS per distinct
/// ingress, not per requirement.
pub struct Preflight<'a> {
    net: &'a Network,
    flows: &'a [Flow],
    cfg: PreflightConfig,
    reach: HashMap<RouterId, Vec<bool>>,
    /// Distinct valid ingresses of positive-volume flows.
    sources: Vec<RouterId>,
    /// Set when the flow set is itself invalid (negative volumes or
    /// out-of-range ingresses): every bound would be unsound, so
    /// everything classifies as `NeedsSymbolic`.
    unsound: bool,
}

impl<'a> Preflight<'a> {
    /// Builds a classifier for one network + flow set + options.
    pub fn new(net: &'a Network, flows: &'a [Flow], cfg: PreflightConfig) -> Preflight<'a> {
        let n = net.topo.num_routers();
        let unsound = flows
            .iter()
            .any(|f| f.volume.is_negative() || f.ingress.0 as usize >= n);
        let mut sources: Vec<RouterId> = flows
            .iter()
            .filter(|f| !f.volume.is_zero() && (f.ingress.0 as usize) < n)
            .map(|f| f.ingress)
            .collect();
        sources.sort();
        sources.dedup();
        Preflight {
            net,
            flows,
            cfg,
            reach: HashMap::new(),
            sources,
            unsound,
        }
    }

    fn reach(&mut self, r: RouterId) -> &Vec<bool> {
        self.reach
            .entry(r)
            .or_insert_with(|| reachable_from(&self.net.topo, &[r]))
    }

    /// Whether `point` is a valid measurement point of this topology.
    fn point_in_range(&self, point: LoadPoint) -> bool {
        match point {
            LoadPoint::Link(l) => (l.0 as usize) < self.net.topo.num_links(),
            LoadPoint::Delivered(r) | LoadPoint::Dropped(r) => {
                (r.0 as usize) < self.net.topo.num_routers()
            }
        }
    }

    /// A sound upper bound on the load at `point` across every
    /// failure scenario, or `None` when the flow set or point is
    /// invalid. Zero means no positive-volume flow can reach the
    /// point at all.
    pub fn upper_bound(&mut self, point: LoadPoint) -> Option<Ratio> {
        if self.unsound || !self.point_in_range(point) {
            return None;
        }
        let (gate, multiplier) = match point {
            LoadPoint::Link(l) => (
                self.net.topo.link(l).from,
                Ratio::int(self.cfg.max_hops as i64),
            ),
            LoadPoint::Delivered(r) | LoadPoint::Dropped(r) => (r, Ratio::ONE),
        };
        let mut sum = Ratio::ZERO;
        for i in 0..self.flows.len() {
            let ingress = self.flows[i].ingress;
            if self.flows[i].volume.is_zero() || !self.reach(ingress)[gate.0 as usize] {
                continue;
            }
            sum += &self.flows[i].volume;
        }
        Some(sum * multiplier)
    }

    /// Classifies one requirement. `req_ix` is only recorded in the
    /// result (for reporting); classification itself depends only on
    /// the requirement.
    pub fn classify_req(&mut self, req_ix: usize, req: &TlpReq) -> ReqClassification {
        let verdict = |class, certificate| ReqClassification {
            req_ix,
            class,
            certificate,
        };
        let needs_symbolic = verdict(ReqClass::NeedsSymbolic, None);
        if let (Some(min), Some(max)) = (&req.min, &req.max) {
            if min > max {
                return verdict(
                    ReqClass::ProvenViolated,
                    Some(Certificate::ContradictoryBounds),
                );
            }
        }
        let Some(bound) = self.upper_bound(req.point) else {
            return needs_symbolic;
        };
        if let Some(min) = &req.min {
            if min > &bound {
                return verdict(
                    ReqClass::ProvenViolated,
                    Some(Certificate::InfeasibleMin { bound }),
                );
            }
        }
        let min_ok = req.min.as_ref().is_none_or(|m| m <= &Ratio::ZERO);
        let max_ok = req.max.as_ref().is_none_or(|m| m >= &bound);
        if min_ok && max_ok {
            let cert = if req.max.is_none() {
                Certificate::TrivialBounds
            } else if bound.is_zero() {
                Certificate::Unreachable
            } else {
                Certificate::UpperBound { bound }
            };
            return verdict(ReqClass::ProvenSafe, Some(cert));
        }
        // A positive minimum can still be refuted by a within-budget
        // disconnecting cut.
        if req.min.as_ref().is_some_and(|m| m > &Ratio::ZERO) && self.cfg.k >= 1 {
            let target = match req.point {
                LoadPoint::Link(l) => CutTarget::Link(l),
                LoadPoint::Delivered(r) | LoadPoint::Dropped(r) => CutTarget::Router(r),
            };
            if let Some(cut) =
                min_disconnecting_failures(&self.net.topo, self.cfg.mode, &self.sources, target)
            {
                if cut.count() <= self.cfg.k as usize {
                    return verdict(
                        ReqClass::ProvenViolated,
                        Some(Certificate::DisconnectingCut { cut }),
                    );
                }
            }
        }
        needs_symbolic
    }
}

/// Classifies every requirement of `tlp` (see [`Preflight`]).
pub fn classify(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    cfg: PreflightConfig,
) -> Vec<ReqClassification> {
    let mut pf = Preflight::new(net, flows, cfg);
    tlp.reqs
        .iter()
        .enumerate()
        .map(|(ix, req)| pf.classify_req(ix, req))
        .collect()
}

/// Independently re-validates a classification's certificate against
/// the requirement it claims to discharge: fresh BFS, fresh volume
/// sums, no state shared with [`Preflight`].
///
/// # Errors
///
/// `Err` explains the first fact that failed to check — a forged or
/// stale certificate, or one that cannot justify its class.
///
/// # Panics
///
/// Panics only if `classification.req_ix` points outside the TLP the
/// classification was computed from (caller error).
pub fn check_certificate(
    net: &Network,
    flows: &[Flow],
    req: &TlpReq,
    cfg: PreflightConfig,
    classification: &ReqClassification,
) -> Result<(), String> {
    let cert = match (&classification.certificate, classification.class) {
        (None, ReqClass::NeedsSymbolic) => return Ok(()),
        (None, c) => return Err(format!("verdict {c:?} carries no certificate")),
        (Some(_), ReqClass::NeedsSymbolic) => {
            return Err("NeedsSymbolic must not carry a certificate".into())
        }
        (Some(cert), _) => cert,
    };
    let topo = &net.topo;
    let n = topo.num_routers();
    if flows
        .iter()
        .any(|f| f.volume.is_negative() || f.ingress.0 as usize >= n)
    {
        return Err("flow set is invalid: no static bound is sound".into());
    }
    let in_range = match req.point {
        LoadPoint::Link(l) => (l.0 as usize) < topo.num_links(),
        LoadPoint::Delivered(r) | LoadPoint::Dropped(r) => (r.0 as usize) < n,
    };
    if !in_range && !matches!(cert, Certificate::ContradictoryBounds) {
        return Err(format!("point {:?} is out of range", req.point));
    }
    // Recompute the sound upper bound from scratch.
    let recompute_bound = || -> Ratio {
        let (gate, multiplier) = match req.point {
            LoadPoint::Link(l) => (topo.link(l).from, Ratio::int(cfg.max_hops as i64)),
            LoadPoint::Delivered(r) | LoadPoint::Dropped(r) => (r, Ratio::ONE),
        };
        let mut sum = Ratio::ZERO;
        for f in flows {
            if !f.volume.is_zero() && reachable_from(topo, &[f.ingress])[gate.0 as usize] {
                sum += &f.volume;
            }
        }
        sum * multiplier
    };
    let min_ok = req.min.as_ref().is_none_or(|m| m <= &Ratio::ZERO);
    match (classification.class, cert) {
        (ReqClass::ProvenViolated, Certificate::ContradictoryBounds) => {
            match (&req.min, &req.max) {
                (Some(min), Some(max)) if min > max => Ok(()),
                _ => Err("bounds are not contradictory".into()),
            }
        }
        (ReqClass::ProvenViolated, Certificate::InfeasibleMin { bound }) => {
            let fresh = recompute_bound();
            if &fresh > bound {
                return Err(format!(
                    "claimed bound {bound} is below the recomputed sound bound {fresh}"
                ));
            }
            match &req.min {
                Some(min) if min > bound => Ok(()),
                _ => Err("minimum does not exceed the claimed bound".into()),
            }
        }
        (ReqClass::ProvenViolated, Certificate::DisconnectingCut { cut }) => {
            if cut.count() > cfg.k as usize {
                return Err(format!(
                    "cut size {} exceeds budget k={}",
                    cut.count(),
                    cfg.k
                ));
            }
            if !cut.failed_links.is_empty() && !links_failable(cfg.mode) {
                return Err("cut fails links but links cannot fail".into());
            }
            if !cut.failed_routers.is_empty() && !routers_failable(cfg.mode) {
                return Err("cut fails routers but routers cannot fail".into());
            }
            if req.min.as_ref().is_none_or(|m| m <= &Ratio::ZERO) {
                return Err("cut refutes nothing: no positive minimum".into());
            }
            let sources: Vec<RouterId> = flows
                .iter()
                .filter(|f| !f.volume.is_zero())
                .map(|f| f.ingress)
                .collect();
            let reach = reachable_under(topo, &sources, cut);
            let disconnected = match req.point {
                LoadPoint::Delivered(r) | LoadPoint::Dropped(r) => !reach[r.0 as usize],
                LoadPoint::Link(l) => {
                    !cut.link_usable(topo, l) || !reach[topo.link(l).from.0 as usize]
                }
            };
            if disconnected {
                Ok(())
            } else {
                Err("cut does not disconnect the point from the sources".into())
            }
        }
        (ReqClass::ProvenSafe, Certificate::TrivialBounds) => {
            if min_ok && req.max.is_none() {
                Ok(())
            } else {
                Err("bounds are not trivially satisfied by nonnegative loads".into())
            }
        }
        (ReqClass::ProvenSafe, Certificate::Unreachable) => {
            if !recompute_bound().is_zero() {
                return Err("some positive-volume flow reaches the point".into());
            }
            if min_ok && req.max.as_ref().is_none_or(|m| m >= &Ratio::ZERO) {
                Ok(())
            } else {
                Err("bounds reject the identically-zero load".into())
            }
        }
        (ReqClass::ProvenSafe, Certificate::UpperBound { bound }) => {
            let fresh = recompute_bound();
            if &fresh > bound {
                return Err(format!(
                    "claimed bound {bound} is below the recomputed sound bound {fresh}"
                ));
            }
            if min_ok && req.max.as_ref().is_none_or(|m| m >= bound) {
                Ok(())
            } else {
                Err("bounds reject some value in [0, bound]".into())
            }
        }
        (class, cert) => Err(format!("certificate {cert:?} cannot justify {class:?}")),
    }
}

/// The deep lint: every [`lint_spec`] rule plus the semantic rules
/// `YU021`–`YU032` built on reachability, min-cuts, and bound
/// inference. This is what `yu lint --deep` runs.
///
/// # Panics
///
/// Panics only on internal invariant violations (a classification
/// whose requirement index is out of range).
pub fn lint_deep(
    net: &Network,
    flows: &[Flow],
    tlp: &Tlp,
    k: u32,
    mode: FailureMode,
) -> Vec<Diagnostic> {
    let mut out = lint_spec(net, flows, tlp, k, mode);
    let topo = &net.topo;
    if net.configs.len() != topo.num_routers() {
        // lint_spec already reported YU001; the semantic rules index
        // configs by router and would panic.
        return out;
    }

    // YU028: routers with no links at all.
    for r in isolated_routers(topo) {
        out.push(Diagnostic::warning(
            "YU028",
            format!("router {}", topo.router(r).name),
            "isolated: no links attach to this router, so no traffic can \
             enter or leave it",
        ));
    }

    // YU027: bridge links (single-link SRLGs) — only meaningful when
    // link failures are in scope.
    if links_failable(mode) && k >= 1 {
        for u in bridges(topo) {
            let (fwd, _) = topo.directions(u);
            let lk = topo.link(fwd);
            out.push(Diagnostic::warning(
                "YU027",
                format!("link {}", topo.ulink_label(u)),
                format!(
                    "bridge: this single failure disconnects {} from {} — \
                     one failure of the budget k={k} partitions the network here",
                    topo.router(lk.from).name,
                    topo.router(lk.to).name
                ),
            ));
        }
    }

    // YU021: the failure budget suffices to partition the topology,
    // so "arbitrary k failures" degenerates to "the network can be
    // split" and lower-bound requirements are at the cut's mercy.
    if let Some(cut) = partition_failures(topo, mode, k) {
        let how = if cut.count() == 0 {
            "the topology is already disconnected with zero failures".to_string()
        } else {
            format!(
                "failing {} (within budget k={k}) splits it into mutually \
                 unreachable alive routers",
                cut.describe(topo)
            )
        };
        out.push(Diagnostic::warning(
            "YU021",
            "topology",
            format!("the network can be partitioned within the failure budget: {how}"),
        ));
    }

    // YU026: flows entering a router exceed its total egress capacity
    // (excluding traffic it can deliver locally): overload at that
    // router is possible in every scenario that keeps it reachable.
    let mut ingress_volume: HashMap<RouterId, Ratio> = HashMap::new();
    for f in flows {
        if f.volume.is_negative() || (f.ingress.0 as usize) >= topo.num_routers() {
            continue;
        }
        let local = net
            .config(f.ingress)
            .connected
            .iter()
            .any(|p| p.contains(f.dst));
        if !local {
            *ingress_volume.entry(f.ingress).or_insert(Ratio::ZERO) += &f.volume;
        }
    }
    for r in topo.routers() {
        let Some(vol) = ingress_volume.get(&r) else {
            continue;
        };
        let mut egress = Ratio::ZERO;
        for &l in topo.out_links(r) {
            egress += &topo.link(l).capacity;
        }
        if vol > &egress {
            out.push(Diagnostic::warning(
                "YU026",
                format!("router {}", topo.router(r).name),
                format!(
                    "capacity-infeasible ingress volume: {vol} Gbps of non-local \
                     traffic enters but total egress capacity is only {egress} Gbps"
                ),
            ));
        }
    }

    // Classification-driven rules (YU022–YU025, YU029–YU031).
    let cfg = PreflightConfig {
        k,
        mode,
        max_hops: yu_net::DEFAULT_MAX_HOPS,
    };
    let mut pf = Preflight::new(net, flows, cfg);
    let has_traffic = flows.iter().any(|f| !f.volume.is_zero());
    let (mut safe, mut violated, mut symbolic) = (0usize, 0usize, 0usize);
    for (i, req) in tlp.reqs.iter().enumerate() {
        let loc = || format!("requirement {i} ({})", req.point.describe(topo));
        let c = pf.classify_req(i, req);
        // YU022: dead requirement — no traffic can ever reach the
        // point, so its load is identically zero.
        if has_traffic && pf.upper_bound(req.point).is_some_and(|b| b.is_zero()) {
            out.push(Diagnostic::warning(
                "YU022",
                loc(),
                "dead requirement: no flow's ingress reaches this point, so \
                 its load is identically 0 in every scenario",
            ));
        }
        match c.class {
            ReqClass::ProvenSafe => {
                safe += 1;
                let cert = c
                    .certificate
                    .as_ref()
                    .expect("safe verdicts carry certificates");
                out.push(Diagnostic::note(
                    "YU023",
                    loc(),
                    format!("statically discharged: {}", cert.describe()),
                ));
            }
            ReqClass::ProvenViolated => {
                violated += 1;
                match c
                    .certificate
                    .as_ref()
                    .expect("violated verdicts carry certificates")
                {
                    Certificate::ContradictoryBounds => out.push(Diagnostic::error(
                        "YU029",
                        loc(),
                        "contradictory bounds: min exceeds max, so no load can \
                         ever satisfy this requirement",
                    )),
                    Certificate::InfeasibleMin { bound } => out.push(Diagnostic::warning(
                        "YU024",
                        loc(),
                        format!(
                            "violated even with zero failures: the minimum exceeds \
                             the sound load bound {bound}"
                        ),
                    )),
                    Certificate::DisconnectingCut { cut } => {
                        let router_degeneracy = matches!(
                            req.point,
                            LoadPoint::Delivered(r) | LoadPoint::Dropped(r)
                                if *cut == Scenario::routers([r])
                        );
                        if router_degeneracy {
                            out.push(Diagnostic::warning(
                                "YU031",
                                loc(),
                                "router-failure degeneracy: failing the measured \
                                 router itself zeroes this load below its minimum \
                                 (router mode makes every such bound refutable)",
                            ));
                        } else {
                            out.push(Diagnostic::warning(
                                "YU025",
                                loc(),
                                format!(
                                    "a within-budget cut refutes the minimum: failing \
                                     {} disconnects every traffic source from this point",
                                    cut.describe(topo)
                                ),
                            ));
                        }
                    }
                    other => out.push(Diagnostic::warning(
                        "YU024",
                        loc(),
                        format!("proven violated: {}", other.describe()),
                    )),
                }
            }
            ReqClass::NeedsSymbolic => symbolic += 1,
        }
    }

    // YU030: the same measurement point constrained twice.
    let mut seen: HashMap<LoadPoint, usize> = HashMap::new();
    for (i, req) in tlp.reqs.iter().enumerate() {
        if let Some(&first) = seen.get(&req.point) {
            out.push(Diagnostic::warning(
                "YU030",
                format!("requirement {i} ({})", req.point.describe(topo)),
                format!(
                    "duplicate measurement point: requirement {first} already \
                     constrains it (merge the bounds into one requirement)"
                ),
            ));
        } else {
            seen.insert(req.point, i);
        }
    }

    // YU032: the preflight summary.
    if !tlp.reqs.is_empty() {
        out.push(Diagnostic::note(
            "YU032",
            "preflight",
            format!(
                "{} of {} requirements discharged statically ({safe} proven safe, \
                 {violated} proven violated); {symbolic} need the symbolic engine",
                safe + violated,
                tlp.reqs.len(),
            ),
        ));
    }
    out
}
