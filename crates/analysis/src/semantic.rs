//! Graph-theoretic semantic analysis over `yu-net` topologies.
//!
//! The symbolic engine answers "what is the exact load at this point
//! under every ≤ k-failure scenario"; many requirements do not need
//! that much machinery. This module provides the purely combinatorial
//! primitives the preflight classifier (see [`crate::bounds`]) is
//! built on:
//!
//! * multi-source reachability under a concrete failure scenario,
//! * a unit-capacity max-flow/min-cut engine that computes, per
//!   measurement point, the minimum number of link/router failures
//!   that disconnects every traffic source from it — and returns the
//!   concrete cut as a [`Scenario`] so the claim is independently
//!   checkable,
//! * bridge and partition detection for the deep lint rules
//!   (`YU021`, `YU027`, `YU028`).
//!
//! Soundness notes. All reachability here is over the *full* directed
//! topology: failures only ever remove edges, so full-topology
//! reachability over-approximates where traffic can be in any
//! scenario. Cuts go the other direction — a returned cut is a
//! *witness*, verified by re-running BFS with the cut applied, so a
//! suboptimal cut can only make the analysis less aggressive, never
//! wrong.

use std::collections::BTreeSet;
use yu_net::{FailureMode, LinkId, RouterId, Scenario, Topology, ULinkId};

/// Capacity standing in for "this element can never fail" in the flow
/// network. Any max-flow at or above this value means no finite cut
/// exists.
const INF: i64 = 1 << 40;

/// Whether undirected links are failable under `mode`.
pub fn links_failable(mode: FailureMode) -> bool {
    matches!(mode, FailureMode::Links | FailureMode::LinksAndRouters)
}

/// Whether routers are failable under `mode`.
pub fn routers_failable(mode: FailureMode) -> bool {
    matches!(mode, FailureMode::Routers | FailureMode::LinksAndRouters)
}

/// Routers reachable from any of `sources` when `scenario`'s elements
/// have failed. A failed source router is not seeded (traffic whose
/// ingress is down never enters the network), and no failed link or
/// link with a failed endpoint is traversed — exactly the usability
/// guards of the symbolic execution.
pub fn reachable_under(topo: &Topology, sources: &[RouterId], scenario: &Scenario) -> Vec<bool> {
    let mut seen = vec![false; topo.num_routers()];
    let mut queue: Vec<RouterId> = Vec::new();
    for &s in sources {
        let ix = s.0 as usize;
        if ix < seen.len() && scenario.router_alive(s) && !seen[ix] {
            seen[ix] = true;
            queue.push(s);
        }
    }
    while let Some(r) = queue.pop() {
        for &l in topo.out_links(r) {
            if !scenario.link_usable(topo, l) {
                continue;
            }
            let to = topo.link(l).to;
            if !seen[to.0 as usize] {
                seen[to.0 as usize] = true;
                queue.push(to);
            }
        }
    }
    seen
}

/// Routers reachable from any of `sources` in the intact topology.
pub fn reachable_from(topo: &Topology, sources: &[RouterId]) -> Vec<bool> {
    reachable_under(topo, sources, &Scenario::none())
}

/// What a disconnecting cut must separate the sources from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutTarget {
    /// Traffic arriving at (or originating at) a router — the
    /// `Delivered`/`Dropped` load points.
    Router(RouterId),
    /// Traffic traversing a directed link — the `Link` load points.
    Link(LinkId),
}

/// A minimum-size set of failures after which no traffic from
/// `sources` can appear at `target`, or `None` when no finite failure
/// set achieves that (e.g. the target router is itself a source and
/// routers cannot fail).
///
/// The empty scenario is returned when the target is already
/// unreachable with zero failures. The result is guaranteed to
/// disconnect (it is re-checkable with [`reachable_under`]); its size
/// is minimal for router targets and at most 1 for reachable link
/// targets (failing the link itself, or an endpoint in router mode,
/// always suffices).
pub fn min_disconnecting_failures(
    topo: &Topology,
    mode: FailureMode,
    sources: &[RouterId],
    target: CutTarget,
) -> Option<Scenario> {
    match target {
        CutTarget::Link(l) => {
            let lk = topo.link(l);
            let reach = reachable_from(topo, sources);
            if !reach[lk.from.0 as usize] {
                return Some(Scenario::none());
            }
            // Traffic can reach the tail, so the cheapest cut is to
            // kill the link directly: its own undirected link when
            // links fail, else an endpoint router.
            if links_failable(mode) {
                Some(Scenario::links([lk.ulink]))
            } else {
                Some(Scenario::routers([lk.to]))
            }
        }
        CutTarget::Router(t) => {
            if (t.0 as usize) >= topo.num_routers() {
                return Some(Scenario::none());
            }
            if sources.contains(&t) {
                // Self-sourced traffic is at the target without
                // crossing any link; only failing the router stops it.
                return if routers_failable(mode) {
                    Some(Scenario::routers([t]))
                } else {
                    None
                };
            }
            min_cut(topo, mode, sources, t, &BTreeSet::new())
        }
    }
}

/// Minimum-size failure set separating `sources` from `sink` (arrival
/// at the sink, including the option of failing the sink itself when
/// routers are failable and the sink is not in `protect`). `protect`
/// lists routers that must stay alive (used by partition detection,
/// where both endpoints of the partition must survive).
pub fn min_cut(
    topo: &Topology,
    mode: FailureMode,
    sources: &[RouterId],
    sink: RouterId,
    protect: &BTreeSet<RouterId>,
) -> Option<Scenario> {
    // Node split: router r becomes r_in = 2r and r_out = 2r+1 with an
    // internal arc carrying the router's own failure; a super source
    // feeds every traffic source. Undirected links contribute two
    // antiparallel arcs sharing one failure element (standard for
    // undirected connectivity: a min cut never pays for both
    // directions, because a crossing arc's antiparallel twin crosses
    // the other way).
    let n = topo.num_routers();
    let super_src = 2 * n;
    let mut net = FlowNet::new(2 * n + 1);
    for r in topo.routers() {
        let failable = routers_failable(mode) && !protect.contains(&r);
        let cap = if failable { 1 } else { INF };
        let elem = failable.then_some(CutElem::Router(r));
        net.add_arc(2 * r.0 as usize, 2 * r.0 as usize + 1, cap, elem);
    }
    for u in topo.ulinks() {
        let (fwd, _) = topo.directions(u);
        let lk = topo.link(fwd);
        let cap = if links_failable(mode) { 1 } else { INF };
        let elem = links_failable(mode).then_some(CutElem::Link(u));
        let (a, b) = (lk.from.0 as usize, lk.to.0 as usize);
        net.add_arc(2 * a + 1, 2 * b, cap, elem);
        net.add_arc(2 * b + 1, 2 * a, cap, elem);
    }
    let mut seeded = BTreeSet::new();
    for &s in sources {
        if (s.0 as usize) < n && seeded.insert(s) {
            net.add_arc(super_src, 2 * s.0 as usize, INF, None);
        }
    }
    let flow = net.max_flow(super_src, 2 * sink.0 as usize + 1);
    if flow >= INF {
        return None;
    }
    Some(net.extract_cut(super_src))
}

/// A ≤ `k`-failure scenario after which two *alive* routers can no
/// longer reach each other, if the analysis finds one — evidence that
/// the failure budget suffices to partition the network (`YU021`).
///
/// Exact for pure link failures (fixed-source max-flow sweeps realize
/// the edge connectivity); for router modes the sweep over two source
/// candidates is a sound heuristic — any scenario returned is
/// re-verified to partition, but a cleverer partition within budget
/// may exist undetected.
///
/// # Panics
///
/// Panics only if an internal invariant breaks (a computed cut that
/// fails its own re-verification BFS).
pub fn partition_failures(topo: &Topology, mode: FailureMode, k: u32) -> Option<Scenario> {
    let n = topo.num_routers();
    if n < 2 {
        return None;
    }
    let r0 = RouterId(0);
    let full = reachable_from(topo, &[r0]);
    if full.iter().any(|&x| !x) {
        return Some(Scenario::none());
    }
    if k == 0 {
        return None;
    }
    let min_deg = topo
        .routers()
        .min_by_key(|&r| topo.out_links(r).len())
        .expect("n >= 2");
    let mut candidates = vec![r0];
    if min_deg != r0 {
        candidates.push(min_deg);
    }
    let mut best: Option<Scenario> = None;
    'outer: for s in candidates {
        for t in topo.routers() {
            if t == s {
                continue;
            }
            let protect: BTreeSet<RouterId> = [s, t].into_iter().collect();
            if let Some(cut) = min_cut(topo, mode, &[s], t, &protect) {
                if cut.count() <= k as usize
                    && best.as_ref().is_none_or(|b| cut.count() < b.count())
                    && !reachable_under(topo, &[s], &cut)[t.0 as usize]
                {
                    let found_single = cut.count() <= 1;
                    best = Some(cut);
                    if found_single {
                        break 'outer;
                    }
                }
            }
        }
    }
    best
}

/// Undirected links whose sole failure disconnects their endpoints
/// (bridges — single-link SRLGs, the `YU027` rule). Parallel links are
/// never bridges: the twin keeps the endpoints connected.
pub fn bridges(topo: &Topology) -> Vec<ULinkId> {
    topo.ulinks()
        .filter(|&u| {
            let (fwd, _) = topo.directions(u);
            let lk = topo.link(fwd);
            let cut = Scenario::links([u]);
            !reachable_under(topo, &[lk.from], &cut)[lk.to.0 as usize]
        })
        .collect()
}

/// Routers with no links at all (`YU028`): no traffic can enter or
/// leave them, so flows ingressing there go nowhere and measurement
/// points there are dead.
pub fn isolated_routers(topo: &Topology) -> Vec<RouterId> {
    topo.routers()
        .filter(|&r| topo.out_links(r).is_empty() && topo.in_links(r).is_empty())
        .collect()
}

/// The failure element a flow-network arc stands for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CutElem {
    Link(ULinkId),
    Router(RouterId),
}

/// A tiny Dinic max-flow solver over an arc-list representation.
/// Capacities are 1 for failable elements and [`INF`] for everything
/// that must not enter a cut.
struct FlowNet {
    adj: Vec<Vec<usize>>,
    to: Vec<usize>,
    cap: Vec<i64>,
    elem: Vec<Option<CutElem>>,
}

impl FlowNet {
    fn new(n: usize) -> FlowNet {
        FlowNet {
            adj: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            elem: Vec::new(),
        }
    }

    fn add_arc(&mut self, u: usize, v: usize, cap: i64, elem: Option<CutElem>) {
        let ix = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.elem.push(elem);
        self.to.push(u);
        self.cap.push(0);
        self.elem.push(None);
        self.adj[u].push(ix);
        self.adj[v].push(ix + 1);
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<u32>> {
        let mut level = vec![u32::MAX; self.adj.len()];
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &a in &self.adj[u] {
                let v = self.to[a];
                if self.cap[a] > 0 && level[v] == u32::MAX {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        (level[t] != u32::MAX).then_some(level)
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: i64,
        level: &[u32],
        it: &mut [usize],
    ) -> i64 {
        if u == t {
            return pushed;
        }
        while it[u] < self.adj[u].len() {
            let a = self.adj[u][it[u]];
            let v = self.to[a];
            if self.cap[a] > 0 && level[v] == level[u] + 1 {
                let got = self.dfs_push(v, t, pushed.min(self.cap[a]), level, it);
                if got > 0 {
                    self.cap[a] -= got;
                    self.cap[a ^ 1] += got;
                    return got;
                }
            }
            it[u] += 1;
        }
        0
    }

    /// Max flow from `s` to `t`, capped for practical purposes at
    /// [`INF`] (any flow that large means "no finite cut").
    fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut flow = 0i64;
        while flow < INF {
            let Some(level) = self.bfs_levels(s, t) else {
                break;
            };
            let mut it = vec![0usize; self.adj.len()];
            loop {
                let pushed = self.dfs_push(s, t, INF - flow, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }

    /// After `max_flow`: the failure elements of saturated arcs
    /// crossing the residual-reachability boundary — a minimum cut.
    fn extract_cut(&self, s: usize) -> Scenario {
        let mut seen = vec![false; self.adj.len()];
        seen[s] = true;
        let mut queue = vec![s];
        while let Some(u) = queue.pop() {
            for &a in &self.adj[u] {
                let v = self.to[a];
                if self.cap[a] > 0 && !seen[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        let mut cut = Scenario::none();
        for u in 0..self.adj.len() {
            if !seen[u] {
                continue;
            }
            for &a in &self.adj[u] {
                if seen[self.to[a]] || self.cap[a] > 0 {
                    continue;
                }
                match self.elem[a] {
                    Some(CutElem::Link(l)) => {
                        cut.failed_links.insert(l);
                    }
                    Some(CutElem::Router(r)) => {
                        cut.failed_routers.insert(r);
                    }
                    None => {}
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yu_mtbdd::Ratio;
    use yu_net::Ipv4;

    fn cap() -> Ratio {
        Ratio::int(100)
    }

    /// A - B - C chain plus a parallel A-C detour: A=0, B=1, C=2.
    fn diamondish() -> Topology {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 1);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 1);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 1);
        t.add_link(a, b, 1, cap());
        t.add_link(b, c, 1, cap());
        t.add_link(a, c, 1, cap());
        t
    }

    #[test]
    fn triangle_link_cut_is_two() {
        let t = diamondish();
        let cut = min_disconnecting_failures(
            &t,
            FailureMode::Links,
            &[RouterId(0)],
            CutTarget::Router(RouterId(2)),
        )
        .unwrap();
        assert_eq!(cut.count(), 2);
        assert!(!reachable_under(&t, &[RouterId(0)], &cut)[2]);
    }

    #[test]
    fn router_mode_cuts_the_sink() {
        let t = diamondish();
        let cut = min_disconnecting_failures(
            &t,
            FailureMode::Routers,
            &[RouterId(0)],
            CutTarget::Router(RouterId(2)),
        )
        .unwrap();
        // A single router failure suffices (the sink itself, or the
        // lone source — either zeroes traffic at the sink).
        assert_eq!(cut.count(), 1);
        assert!(cut.failed_links.is_empty());
        assert!(!reachable_under(&t, &[RouterId(0)], &cut)[2]);
    }

    #[test]
    fn self_sourced_traffic_needs_router_failures() {
        let t = diamondish();
        assert_eq!(
            min_disconnecting_failures(
                &t,
                FailureMode::Links,
                &[RouterId(2)],
                CutTarget::Router(RouterId(2)),
            ),
            None
        );
        assert_eq!(
            min_disconnecting_failures(
                &t,
                FailureMode::LinksAndRouters,
                &[RouterId(2)],
                CutTarget::Router(RouterId(2)),
            ),
            Some(Scenario::routers([RouterId(2)]))
        );
    }

    #[test]
    fn link_targets_fall_to_single_failures() {
        let t = diamondish();
        // Directed link B->C is LinkId(2) (u1's forward half).
        let l = LinkId(2);
        assert_eq!(t.link(l).from, RouterId(1));
        let cut =
            min_disconnecting_failures(&t, FailureMode::Links, &[RouterId(0)], CutTarget::Link(l))
                .unwrap();
        assert_eq!(cut, Scenario::links([ULinkId(1)]));
        assert!(!cut.link_usable(&t, l));
    }

    #[test]
    fn unreachable_targets_need_no_failures() {
        let mut t = diamondish();
        let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 1);
        // D is isolated: nothing reaches it.
        let cut = min_disconnecting_failures(
            &t,
            FailureMode::Links,
            &[RouterId(0)],
            CutTarget::Router(d),
        )
        .unwrap();
        assert_eq!(cut, Scenario::none());
    }

    #[test]
    fn parallel_links_are_not_bridges() {
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 1);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 1);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 1);
        t.add_link(a, b, 1, cap());
        t.add_link(a, b, 1, cap());
        let bridge = t.add_link(b, c, 1, cap());
        assert_eq!(bridges(&t), vec![bridge]);
    }

    #[test]
    fn partition_respects_budget() {
        let t = diamondish();
        // The triangle needs 2 link failures to partition.
        assert_eq!(partition_failures(&t, FailureMode::Links, 1), None);
        let cut = partition_failures(&t, FailureMode::Links, 2).unwrap();
        assert_eq!(cut.count(), 2);
        // Router mode: failing B alone does NOT partition (A-C link
        // remains); no single router partitions a triangle.
        assert_eq!(partition_failures(&t, FailureMode::Routers, 1), None);
    }

    #[test]
    fn partition_finds_articulation_router() {
        // A - B - C chain: failing B partitions A from C.
        let mut t = Topology::new();
        let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 1);
        let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 1);
        let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 1);
        t.add_link(a, b, 1, cap());
        t.add_link(b, c, 1, cap());
        let cut = partition_failures(&t, FailureMode::Routers, 1).unwrap();
        assert_eq!(cut, Scenario::routers([b]));
        // And a disconnected graph partitions with zero failures.
        let mut t2 = Topology::new();
        t2.add_router("X", Ipv4::new(10, 0, 0, 1), 1);
        t2.add_router("Y", Ipv4::new(10, 0, 0, 2), 1);
        assert_eq!(
            partition_failures(&t2, FailureMode::Links, 0),
            Some(Scenario::none())
        );
        assert_eq!(isolated_routers(&t2).len(), 2);
    }
}
