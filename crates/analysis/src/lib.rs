//! Preflight static analysis for YU: lint a [`yu_net::Network`] and
//! verification spec before any symbolic computation runs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnostic;
mod lint;

pub use diagnostic::{Diagnostic, Severity};
pub use lint::{lint_network, lint_spec};
