//! Preflight static analysis for YU: lint a [`yu_net::Network`] and
//! verification spec before any symbolic computation runs.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnostic;
mod lint;

pub mod bounds;
pub mod semantic;

pub use bounds::{
    check_certificate, classify, lint_deep, Certificate, Preflight, PreflightConfig, ReqClass,
    ReqClassification,
};
pub use diagnostic::{Diagnostic, Severity};
pub use lint::{lint_network, lint_spec};
pub use semantic::{
    bridges, isolated_routers, min_cut, min_disconnecting_failures, partition_failures,
    reachable_from, reachable_under, CutTarget,
};
