//! The diagnostics data model shared by `yu lint`, `yu check`, and
//! library callers.

use serde::Serialize;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// The spec is broken: verification would be meaningless or crash.
    Error,
    /// Suspicious but not fatal; verification can proceed.
    Warning,
    /// Informational: nothing is wrong, but the analyzer learned
    /// something worth surfacing (e.g. a requirement was discharged
    /// statically). Never affects exit codes, even under
    /// `--deny-warnings`.
    Note,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
            Severity::Note => f.write_str("note"),
        }
    }
}

/// A single finding produced by the preflight linter.
///
/// `code` is a stable `YU0xx` identifier (append-only: codes are never
/// renumbered or reused; see DESIGN.md for the table).
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Stable diagnostic code, e.g. `"YU001"`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable location, e.g. a router name or `flow[3]`.
    pub location: String,
    /// What is wrong and why it matters.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Creates a note diagnostic.
    pub fn note(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Note,
            location: location.into(),
            message: message.into(),
        }
    }

    /// True when this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// True when this diagnostic is a warning.
    pub fn is_warning(&self) -> bool {
        self.severity == Severity::Warning
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}: {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}
