//! One test per diagnostic code: each `YU0xx` must fire on a minimal
//! broken input and stay quiet on a well-formed one.

use yu_analysis::{lint_network, lint_spec, Diagnostic, Severity};
use yu_mtbdd::Ratio;
use yu_net::{
    BgpConfig, FailureMode, Flow, Ipv4, LinkId, LoadPoint, Network, RouterId, SrPath, SrPolicy,
    StaticNextHop, StaticRoute, Tlp, TlpReq, Topology,
};

/// Two routers A, B in one AS connected by a 100 Gbps link.
fn net2() -> (Network, RouterId, RouterId) {
    let mut t = Topology::new();
    let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
    let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 100);
    t.add_link(a, b, 10, Ratio::int(100));
    (Network::new(t), a, b)
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

fn assert_fires(diags: &[Diagnostic], code: &str, severity: Severity) {
    let hit = diags.iter().find(|d| d.code == code).unwrap_or_else(|| {
        panic!("expected {code} to fire, got: {:?}", codes(diags));
    });
    assert_eq!(hit.severity, severity, "{code} severity");
}

#[test]
fn clean_network_has_no_diagnostics() {
    let (net, _, _) = net2();
    assert!(lint_network(&net).is_empty(), "{:?}", lint_network(&net));
}

#[test]
fn yu001_config_count_mismatch() {
    let (net, _, _) = net2();
    let broken = Network {
        topo: net.topo,
        configs: Vec::new(),
    };
    let diags = lint_network(&broken);
    assert_fires(&diags, "YU001", Severity::Error);
}

#[test]
fn yu002_duplicate_router_name() {
    let mut t = Topology::new();
    t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
    t.add_router("A", Ipv4::new(10, 0, 0, 2), 100);
    let diags = lint_network(&Network::new(t));
    assert_fires(&diags, "YU002", Severity::Error);
}

#[test]
fn yu003_non_positive_capacity() {
    let mut t = Topology::new();
    let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
    let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 100);
    t.add_link(a, b, 10, Ratio::ZERO);
    let diags = lint_network(&Network::new(t));
    assert_fires(&diags, "YU003", Severity::Error);
}

#[test]
fn yu004_sr_policy_without_paths() {
    let (mut net, a, _) = net2();
    net.config_mut(a).sr_policies.push(SrPolicy {
        endpoint: Ipv4::new(10, 0, 0, 2),
        match_dscp: None,
        paths: vec![],
    });
    assert_fires(&lint_network(&net), "YU004", Severity::Error);
}

#[test]
fn yu005_sr_path_without_segments() {
    let (mut net, a, _) = net2();
    net.config_mut(a).sr_policies.push(SrPolicy {
        endpoint: Ipv4::new(10, 0, 0, 2),
        match_dscp: None,
        paths: vec![SrPath {
            segments: vec![],
            weight: 1,
        }],
    });
    assert_fires(&lint_network(&net), "YU005", Severity::Error);
}

#[test]
fn yu006_sr_segment_unknown_loopback() {
    let (mut net, a, _) = net2();
    net.config_mut(a).sr_policies.push(SrPolicy {
        endpoint: Ipv4::new(10, 0, 0, 2),
        match_dscp: None,
        paths: vec![SrPath {
            segments: vec![Ipv4::new(9, 9, 9, 9)],
            weight: 1,
        }],
    });
    assert_fires(&lint_network(&net), "YU006", Severity::Error);
}

#[test]
fn yu007_sr_segment_crosses_as_boundary() {
    let mut t = Topology::new();
    let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 100);
    let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 200); // different AS
    t.add_link(a, b, 10, Ratio::int(100));
    let mut net = Network::new(t);
    net.config_mut(a).sr_policies.push(SrPolicy {
        endpoint: Ipv4::new(10, 0, 0, 2),
        match_dscp: None,
        paths: vec![SrPath {
            segments: vec![Ipv4::new(10, 0, 0, 2)],
            weight: 1,
        }],
    });
    assert_fires(&lint_network(&net), "YU007", Severity::Error);
}

#[test]
fn yu007_quiet_when_segments_share_the_as() {
    let (mut net, a, _) = net2();
    net.config_mut(a).sr_policies.push(SrPolicy {
        endpoint: Ipv4::new(10, 0, 0, 2),
        match_dscp: None,
        paths: vec![SrPath {
            segments: vec![Ipv4::new(10, 0, 0, 2)],
            weight: 1,
        }],
    });
    assert!(lint_network(&net).is_empty());
}

#[test]
fn yu008_bgp_network_without_backing_route() {
    let (mut net, a, _) = net2();
    net.config_mut(a).bgp = Some(BgpConfig {
        networks: vec!["100.0.0.0/24".parse().unwrap()],
        ..Default::default()
    });
    assert_fires(&lint_network(&net), "YU008", Severity::Error);
    // A connected route silences it.
    net.config_mut(a)
        .connected
        .push("100.0.0.0/24".parse().unwrap());
    assert!(!codes(&lint_network(&net)).contains(&"YU008"));
}

#[test]
fn yu009_bgp_peer_reference_to_missing_router() {
    let (mut net, a, _) = net2();
    net.config_mut(a).bgp = Some(BgpConfig {
        peer_local_pref: vec![(RouterId(99), 200)],
        ..Default::default()
    });
    assert_fires(&lint_network(&net), "YU009", Severity::Error);
}

#[test]
fn yu010_bgp_peer_reference_without_session() {
    let (mut net, a, b) = net2();
    // B is in the same AS but runs no BGP: no session derives.
    net.config_mut(a).bgp = Some(BgpConfig {
        peer_local_pref: vec![(b, 200)],
        ..Default::default()
    });
    assert_fires(&lint_network(&net), "YU010", Severity::Warning);
}

#[test]
fn yu011_static_next_hop_unresolvable() {
    let (mut net, a, _) = net2();
    net.config_mut(a).static_routes.push(StaticRoute {
        prefix: "50.0.0.0/8".parse().unwrap(),
        next_hop: StaticNextHop::Ip(Ipv4::new(9, 9, 9, 9)),
    });
    assert_fires(&lint_network(&net), "YU011", Severity::Error);
    // Null0 routes drop by design: no diagnostic.
    net.config_mut(a).static_routes[0].next_hop = StaticNextHop::Null0;
    assert!(lint_network(&net).is_empty());
}

#[test]
fn yu011_quiet_when_next_hop_is_a_loopback() {
    let (mut net, a, _) = net2();
    net.config_mut(a).static_routes.push(StaticRoute {
        prefix: "50.0.0.0/8".parse().unwrap(),
        next_hop: StaticNextHop::Ip(Ipv4::new(10, 0, 0, 2)), // B's loopback
    });
    assert!(lint_network(&net).is_empty());
}

#[test]
fn yu012_anycast_loopback_warns() {
    let mut t = Topology::new();
    t.add_router("B1", Ipv4::new(1, 1, 1, 1), 100);
    t.add_router("B2", Ipv4::new(1, 1, 1, 1), 100);
    assert_fires(&lint_network(&Network::new(t)), "YU012", Severity::Warning);
}

#[test]
fn yu013_prefix_attached_to_multiple_routers() {
    let (mut net, a, b) = net2();
    net.config_mut(a)
        .connected
        .push("100.0.0.0/24".parse().unwrap());
    net.config_mut(b)
        .connected
        .push("100.0.0.0/24".parse().unwrap());
    assert_fires(&lint_network(&net), "YU013", Severity::Warning);
}

fn flow(ingress: RouterId, volume: Ratio) -> Flow {
    Flow::new(
        ingress,
        Ipv4::new(11, 0, 0, 1),
        Ipv4::new(100, 0, 0, 1),
        0,
        volume,
    )
}

#[test]
fn yu014_flow_ingress_missing() {
    let (net, _, _) = net2();
    let flows = [flow(RouterId(99), Ratio::int(10))];
    let diags = lint_spec(&net, &flows, &Tlp::new(), 1, FailureMode::Links);
    assert_fires(&diags, "YU014", Severity::Error);
}

#[test]
fn yu015_negative_volume() {
    let (net, a, _) = net2();
    let flows = [flow(a, Ratio::int(-5))];
    let diags = lint_spec(&net, &flows, &Tlp::new(), 1, FailureMode::Links);
    assert_fires(&diags, "YU015", Severity::Error);
}

#[test]
fn yu016_zero_volume() {
    let (net, a, _) = net2();
    let flows = [flow(a, Ratio::ZERO)];
    let diags = lint_spec(&net, &flows, &Tlp::new(), 1, FailureMode::Links);
    assert_fires(&diags, "YU016", Severity::Warning);
}

#[test]
fn yu017_tlp_point_out_of_range() {
    let (net, _, _) = net2();
    let tlp = Tlp::new().with(TlpReq::at_most(
        LoadPoint::Link(LinkId(999)),
        Ratio::int(10),
    ));
    let diags = lint_spec(&net, &[], &tlp, 1, FailureMode::Links);
    assert_fires(&diags, "YU017", Severity::Error);
}

#[test]
fn yu018_min_bound_exceeds_total_volume() {
    let (net, a, b) = net2();
    let flows = [flow(a, Ratio::int(10))];
    let tlp = Tlp::new().with(TlpReq::at_least(LoadPoint::Delivered(b), Ratio::int(50)));
    let diags = lint_spec(&net, &flows, &tlp, 1, FailureMode::Links);
    assert_fires(&diags, "YU018", Severity::Warning);
    // A satisfiable bound is quiet.
    let tlp = Tlp::new().with(TlpReq::at_least(LoadPoint::Delivered(b), Ratio::int(10)));
    assert!(!codes(&lint_spec(&net, &flows, &tlp, 1, FailureMode::Links)).contains(&"YU018"));
}

#[test]
fn yu019_max_bound_exceeds_link_capacity() {
    let (net, _, _) = net2();
    let tlp = Tlp::new().with(TlpReq::at_most(
        LoadPoint::Link(LinkId(0)),
        Ratio::int(500), // capacity is 100
    ));
    let diags = lint_spec(&net, &[], &tlp, 1, FailureMode::Links);
    assert_fires(&diags, "YU019", Severity::Warning);
}

#[test]
fn yu020_failure_budget_covers_everything() {
    let (net, _, _) = net2();
    // One undirected link, k = 1: every element may fail.
    let diags = lint_spec(&net, &[], &Tlp::new(), 1, FailureMode::Links);
    assert_fires(&diags, "YU020", Severity::Warning);
    let diags = lint_spec(&net, &[], &Tlp::new(), 0, FailureMode::Links);
    assert!(!codes(&diags).contains(&"YU020"));
}

#[test]
fn clean_spec_is_quiet_end_to_end() {
    let (mut net, a, b) = net2();
    net.config_mut(b)
        .connected
        .push("100.0.0.0/24".parse().unwrap());
    let flows = [flow(a, Ratio::int(10))];
    let tlp = Tlp::new().with(TlpReq::at_most(LoadPoint::Link(LinkId(0)), Ratio::int(95)));
    let diags = lint_spec(&net, &flows, &tlp, 0, FailureMode::Links);
    assert!(diags.is_empty(), "{diags:?}");
}
