//! The min-cut engine against brute force, and the classifier's
//! certificates against their own independent checker.

use proptest::prelude::*;
use yu_analysis::{
    check_certificate, classify, lint_deep, min_disconnecting_failures, reachable_under,
    Certificate, CutTarget, PreflightConfig, ReqClass,
};
use yu_mtbdd::Ratio;
use yu_net::{
    scenarios_up_to_k, FailureMode, Flow, Ipv4, LoadPoint, Network, RouterId, Scenario, Tlp,
    TlpReq, Topology,
};

fn cfg(k: u32, mode: FailureMode) -> PreflightConfig {
    PreflightConfig {
        k,
        mode,
        max_hops: yu_net::DEFAULT_MAX_HOPS,
    }
}

/// Builds a topology with `n` routers and the undirected edges listed
/// as `(a, b)` pairs.
fn topo(n: u32, edges: &[(u32, u32)]) -> Topology {
    let mut t = Topology::new();
    for i in 0..n {
        t.add_router(
            format!("r{i}"),
            Ipv4::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1),
            1,
        );
    }
    for &(a, b) in edges {
        if a != b {
            t.add_link(RouterId(a), RouterId(b), 1, Ratio::int(100));
        }
    }
    t
}

/// Brute-force minimum disconnection: the smallest ≤ `k_max` failure
/// set after which no source reaches the target router.
fn brute_force_cut(
    t: &Topology,
    mode: FailureMode,
    sources: &[RouterId],
    target: RouterId,
    k_max: usize,
) -> Option<usize> {
    scenarios_up_to_k(t, mode, k_max)
        .filter(|s| !reachable_under(t, sources, s)[target.0 as usize])
        .map(|s| s.count())
        .min()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On random ≤ 6-router graphs in every failure mode, the engine's
    /// cut (a) really disconnects, (b) is no larger than the brute-force
    /// optimum for router targets, and (c) exists whenever brute force
    /// finds any disconnection.
    #[test]
    fn min_cut_matches_brute_force(
        n in 2u32..6,
        raw_edges in proptest::collection::vec((0u32..6, 0u32..6), 1..10),
        src in 0u32..6,
        dst in 0u32..6,
        mode_ix in 0usize..3,
    ) {
        let mode = [FailureMode::Links, FailureMode::Routers, FailureMode::LinksAndRouters][mode_ix];
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|&(a, b)| a != b)
            .collect();
        let t = topo(n, &edges);
        let src = RouterId(src % n);
        let dst = RouterId(dst % n);
        let k_max = t.num_ulinks() + t.num_routers();
        let engine = min_disconnecting_failures(&t, mode, &[src], CutTarget::Router(dst));
        let brute = brute_force_cut(&t, mode, &[src], dst, k_max);
        match (engine, brute) {
            (Some(cut), Some(best)) => {
                prop_assert!(!reachable_under(&t, &[src], &cut)[dst.0 as usize],
                    "cut {cut:?} does not disconnect");
                prop_assert_eq!(cut.count(), best, "cut {:?} is not minimal", &cut);
            }
            (None, None) => {}
            (engine, brute) => {
                return Err(TestCaseError::fail(format!(
                    "engine {engine:?} vs brute force {brute:?} disagree on existence"
                )));
            }
        }
    }

    /// Every certificate the classifier emits passes its own
    /// independent checker, on random graphs, flows, and bounds.
    #[test]
    fn certificates_always_check(
        n in 2u32..6,
        raw_edges in proptest::collection::vec((0u32..6, 0u32..6), 1..10),
        flows_raw in proptest::collection::vec((0u32..6, 1i64..50), 1..4),
        // Bound selectors >= 200 mean "no bound on this side".
        points_raw in proptest::collection::vec((0usize..3, 0u32..6, 0i64..250, 0i64..250), 1..6),
        k in 0u32..3,
        mode_ix in 0usize..3,
    ) {
        let mode = [FailureMode::Links, FailureMode::Routers, FailureMode::LinksAndRouters][mode_ix];
        let edges: Vec<(u32, u32)> = raw_edges
            .into_iter()
            .map(|(a, b)| (a % n, b % n))
            .filter(|&(a, b)| a != b)
            .collect();
        let t = topo(n, &edges);
        let num_links = t.num_links() as u32;
        let net = Network::new(t);
        let flows: Vec<Flow> = flows_raw
            .iter()
            .map(|&(ing, vol)| Flow::new(
                RouterId(ing % n),
                Ipv4::new(11, 0, 0, 1),
                Ipv4::new(100, 0, 0, 1),
                0,
                Ratio::int(vol),
            ))
            .collect();
        let mut tlp = Tlp::new();
        for &(kind, id, min, max) in &points_raw {
            let point = match kind {
                0 if num_links > 0 => LoadPoint::Link(yu_net::LinkId(id % num_links)),
                1 => LoadPoint::Delivered(RouterId(id % n)),
                _ => LoadPoint::Dropped(RouterId(id % n)),
            };
            tlp = tlp.with(TlpReq {
                point,
                min: (min < 200).then(|| Ratio::int(min)),
                max: (max < 200).then(|| Ratio::int(max)),
            });
        }
        let cfg = cfg(k, mode);
        for c in classify(&net, &flows, &tlp, cfg) {
            let req = &tlp.reqs[c.req_ix];
            check_certificate(&net, &flows, req, cfg, &c)
                .map_err(|e| TestCaseError::fail(format!("{c:?}: {e}")))?;
        }
    }
}

#[test]
fn fig1_classification_discharges_monitoring_bounds() {
    let ex = yu_gen::motivating_example();
    let f = ex.routers[5];
    let total = Ratio::int(100);
    let tlp = Tlp::new()
        .with(TlpReq::at_least(LoadPoint::Delivered(f), Ratio::int(70)))
        .with(TlpReq::at_most(LoadPoint::Delivered(f), total.clone()))
        .with(TlpReq::at_most(
            LoadPoint::Dropped(ex.routers[0]),
            total.clone(),
        ));
    let cfg = cfg(1, FailureMode::Links);
    let classes = classify(&ex.net, &ex.flows, &tlp, cfg);
    // The P1 lower bound needs the symbolic engine; the monitoring
    // caps at the total volume are discharged by mass conservation.
    assert_eq!(classes[0].class, ReqClass::NeedsSymbolic);
    assert_eq!(classes[1].class, ReqClass::ProvenSafe);
    assert_eq!(
        classes[1].certificate,
        Some(Certificate::UpperBound { bound: total })
    );
    assert_eq!(classes[2].class, ReqClass::ProvenSafe);
    for c in &classes {
        check_certificate(&ex.net, &ex.flows, &tlp.reqs[c.req_ix], cfg, c).unwrap();
    }
}

#[test]
fn infeasible_minimum_is_proven_violated() {
    let ex = yu_gen::motivating_example();
    let f = ex.routers[5];
    // Total volume is 100; demanding 200 delivered is hopeless with
    // zero failures already.
    let tlp = Tlp::new().with(TlpReq::at_least(LoadPoint::Delivered(f), Ratio::int(200)));
    let cfg = cfg(1, FailureMode::Links);
    let classes = classify(&ex.net, &ex.flows, &tlp, cfg);
    assert_eq!(classes[0].class, ReqClass::ProvenViolated);
    assert!(matches!(
        classes[0].certificate,
        Some(Certificate::InfeasibleMin { .. })
    ));
    check_certificate(&ex.net, &ex.flows, &tlp.reqs[0], cfg, &classes[0]).unwrap();
}

#[test]
fn router_mode_refutes_positive_minima_by_cut() {
    let ex = yu_gen::motivating_example();
    let f = ex.routers[5];
    let tlp = Tlp::new().with(TlpReq::at_least(LoadPoint::Delivered(f), Ratio::int(70)));
    let cfg = cfg(1, FailureMode::Routers);
    let classes = classify(&ex.net, &ex.flows, &tlp, cfg);
    assert_eq!(classes[0].class, ReqClass::ProvenViolated);
    let Some(Certificate::DisconnectingCut { cut }) = &classes[0].certificate else {
        panic!(
            "expected a disconnecting cut, got {:?}",
            classes[0].certificate
        );
    };
    assert_eq!(cut.count(), 1);
    check_certificate(&ex.net, &ex.flows, &tlp.reqs[0], cfg, &classes[0]).unwrap();
}

#[test]
fn deep_lint_surfaces_semantic_rules() {
    let ex = yu_gen::motivating_example();
    let f = ex.routers[5];
    let total = Ratio::int(100);
    let tlp = Tlp::new()
        // Dead requirement: nothing is ever dropped... at a router no
        // flow reaches? All routers are reachable in Fig. 1, so use a
        // contradictory-bounds req and a duplicate point instead.
        .with(TlpReq {
            point: LoadPoint::Delivered(f),
            min: Some(Ratio::int(50)),
            max: Some(Ratio::int(40)),
        })
        .with(TlpReq::at_most(LoadPoint::Delivered(f), total.clone()))
        .with(TlpReq::at_most(LoadPoint::Delivered(f), total));
    let diags = lint_deep(&ex.net, &ex.flows, &tlp, 1, FailureMode::Links);
    let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"YU029"), "contradictory bounds: {codes:?}");
    assert!(codes.contains(&"YU030"), "duplicate point: {codes:?}");
    assert!(codes.contains(&"YU023"), "discharge note: {codes:?}");
    assert!(codes.contains(&"YU032"), "summary note: {codes:?}");
    // Fig. 1 is 2-edge-connected and k=1, so no partition warning.
    assert!(!codes.contains(&"YU021"), "{codes:?}");
}

#[test]
fn deep_lint_flags_bridges_partitions_and_dead_points() {
    // A - B - C chain: both links are bridges, k=1 partitions, and an
    // isolated router D makes a dead measurement point.
    let mut t = Topology::new();
    let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 1);
    let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 1);
    let c = t.add_router("C", Ipv4::new(10, 0, 0, 3), 1);
    let d = t.add_router("D", Ipv4::new(10, 0, 0, 4), 1);
    t.add_link(a, b, 1, Ratio::int(100));
    t.add_link(b, c, 1, Ratio::int(100));
    let net = Network::new(t);
    let flows = vec![Flow::new(
        a,
        Ipv4::new(11, 0, 0, 1),
        Ipv4::new(100, 0, 0, 1),
        0,
        Ratio::int(10),
    )];
    let tlp = Tlp::new().with(TlpReq::at_most(LoadPoint::Dropped(d), Ratio::int(5)));
    let diags = lint_deep(&net, &flows, &tlp, 1, FailureMode::Links);
    let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"YU021"), "partition: {codes:?}");
    assert!(
        codes.iter().filter(|&&c| c == "YU027").count() == 2,
        "bridges: {codes:?}"
    );
    assert!(codes.contains(&"YU028"), "isolated router: {codes:?}");
    assert!(codes.contains(&"YU022"), "dead requirement: {codes:?}");
}

#[test]
fn capacity_infeasible_ingress_is_flagged() {
    // 300 Gbps enters A but its only egress is a 100 Gbps link.
    let mut t = Topology::new();
    let a = t.add_router("A", Ipv4::new(10, 0, 0, 1), 1);
    let b = t.add_router("B", Ipv4::new(10, 0, 0, 2), 1);
    t.add_link(a, b, 1, Ratio::int(100));
    let net = Network::new(t);
    let flows = vec![Flow::new(
        a,
        Ipv4::new(11, 0, 0, 1),
        Ipv4::new(100, 0, 0, 1),
        0,
        Ratio::int(300),
    )];
    let diags = lint_deep(&net, &flows, &Tlp::new(), 1, FailureMode::Links);
    assert!(
        diags.iter().any(|d| d.code == "YU026"),
        "{:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );
}

#[test]
fn certificate_checker_rejects_forged_claims() {
    let ex = yu_gen::motivating_example();
    let f = ex.routers[5];
    let cfg = cfg(1, FailureMode::Links);
    let req = TlpReq::at_most(LoadPoint::Delivered(f), Ratio::int(100));
    // Forged: claim a bound below the recomputed sound bound.
    let forged = yu_analysis::ReqClassification {
        req_ix: 0,
        class: ReqClass::ProvenSafe,
        certificate: Some(Certificate::UpperBound {
            bound: Ratio::int(10),
        }),
    };
    assert!(check_certificate(&ex.net, &ex.flows, &req, cfg, &forged).is_err());
    // Forged: an empty "cut" that disconnects nothing.
    let req2 = TlpReq::at_least(LoadPoint::Delivered(f), Ratio::int(70));
    let forged2 = yu_analysis::ReqClassification {
        req_ix: 0,
        class: ReqClass::ProvenViolated,
        certificate: Some(Certificate::DisconnectingCut {
            cut: Scenario::none(),
        }),
    };
    assert!(check_certificate(&ex.net, &ex.flows, &req2, cfg, &forged2).is_err());
    // Forged: a cut using elements the failure mode forbids.
    let forged3 = yu_analysis::ReqClassification {
        req_ix: 0,
        class: ReqClass::ProvenViolated,
        certificate: Some(Certificate::DisconnectingCut {
            cut: Scenario::routers([f]),
        }),
    };
    assert!(check_certificate(&ex.net, &ex.flows, &req2, cfg, &forged3).is_err());
}
